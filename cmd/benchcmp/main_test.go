package main

import (
	"regexp"
	"strings"
	"testing"
)

const oldBench = `
goos: linux
BenchmarkCompressDelta     	    2000	      1625 ns/op	  39.38 MB/s	     144 B/op	       3 allocs/op
BenchmarkCompressDelta     	    2000	      1980 ns/op	  32.32 MB/s	     144 B/op	       3 allocs/op
BenchmarkCompressFPC-8     	    2000	      6476 ns/op	      72 B/op	       7 allocs/op
BenchmarkNoCStepIdle       	    2000	      2736 ns/op
BenchmarkTraceGeneration   	    2000	       845.0 ns/op
BenchmarkTraceGeneration   	    2000	       691.0 ns/op
PASS
`

const newBench = `
BenchmarkCompressDelta-8   	    2000	      1100 ns/op	      80 B/op	       1 allocs/op
BenchmarkCompressFPC       	    2000	      7500 ns/op	      80 B/op	       1 allocs/op
BenchmarkNoCStepIdle-8     	    2000	      2800 ns/op
BenchmarkBlockContent      	    2000	     11618 ns/op
PASS
`

func parse(t *testing.T, s string) map[string]benchResult {
	t.Helper()
	m, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBench(t *testing.T) {
	m := parse(t, oldBench)
	if len(m) != 4 {
		t.Fatalf("parsed %d benches, want 4: %v", len(m), m)
	}
	// Repeated lines (from -count>1) keep the lowest ns/op, whichever
	// order they appear in.
	d := m["BenchmarkCompressDelta"]
	if d.NsPerOp != 1625 || d.BytesPerOp != 144 || d.AllocsPerOp != 3 {
		t.Errorf("CompressDelta = %+v", d)
	}
	// The -8 GOMAXPROCS suffix must be stripped so runs from different
	// machines compare.
	if _, ok := m["BenchmarkCompressFPC"]; !ok {
		t.Error("suffixed name BenchmarkCompressFPC-8 not normalized")
	}
	if n := m["BenchmarkNoCStepIdle"]; n.AllocsPerOp != -1 || n.BytesPerOp != -1 {
		t.Errorf("absent memory fields should be -1, got %+v", n)
	}
	if tg := m["BenchmarkTraceGeneration"]; tg.NsPerOp != 691.0 {
		t.Errorf("min-of-repeats / fractional ns/op parsed as %v", tg.NsPerOp)
	}
}

func TestCompareGate(t *testing.T) {
	old, cur := parse(t, oldBench), parse(t, newBench)
	gate := regexp.MustCompile(`Compress|NoCStep`)
	report, failed := compare(old, cur, gate, 10)
	// FPC regressed 6476 -> 7500 (+15.8%): must fail the 10% gate.
	if len(failed) != 1 || failed[0] != "BenchmarkCompressFPC" {
		t.Errorf("failed = %v, want [BenchmarkCompressFPC]", failed)
	}
	// Delta improved and NoCStepIdle regressed only 2.3%: both pass.
	if !strings.Contains(report, "REGRESSION") {
		t.Error("report should mark the regression")
	}
	if !strings.Contains(report, "(no baseline for BenchmarkBlockContent)") {
		t.Error("new-only benchmarks should be noted")
	}
	// TraceGeneration is absent from the new file: silently skipped from
	// the table but present in neither failure list.
	if strings.Contains(report, "TraceGeneration") {
		t.Error("benchmarks missing from the new run should not be compared")
	}
}

func TestCompareNoGate(t *testing.T) {
	old, cur := parse(t, oldBench), parse(t, newBench)
	_, failed := compare(old, cur, nil, 10)
	if len(failed) != 0 {
		t.Errorf("no gate should never fail, got %v", failed)
	}
}

const parallelBench = `
BenchmarkNoCStepMesh8Serial-4     	    2000	    120000 ns/op
BenchmarkNoCStepMesh8Workers4-4   	    2000	     60000 ns/op
PASS
`

const parallelBench1CPU = `
BenchmarkNoCStepMesh8Serial       	    2000	    120000 ns/op
BenchmarkNoCStepMesh8Workers4     	    2000	    130000 ns/op
PASS
`

func TestParseBenchProcs(t *testing.T) {
	m := parse(t, parallelBench)
	if p := m["BenchmarkNoCStepMesh8Serial"].Procs; p != 4 {
		t.Errorf("Procs = %d, want 4 from the -4 suffix", p)
	}
	if p := parse(t, parallelBench1CPU)["BenchmarkNoCStepMesh8Serial"].Procs; p != 1 {
		t.Errorf("Procs = %d, want 1 when the suffix is absent", p)
	}
}

func TestSpeedupGate(t *testing.T) {
	cur := parse(t, parallelBench)
	pair := "BenchmarkNoCStepMesh8Serial=BenchmarkNoCStepMesh8Workers4"
	line, slow, err := speedup(cur, pair, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if slow {
		t.Error("2.00x speedup must pass a 1.5x floor")
	}
	if !strings.Contains(line, "2.00x") {
		t.Errorf("report %q should carry the 2.00x ratio", line)
	}
	// A floor above the measured ratio fails on a multi-CPU run.
	if _, slow, _ := speedup(cur, pair, 2.5); !slow {
		t.Error("2.00x speedup must fail a 2.5x floor on a multi-CPU run")
	}
}

func TestSpeedupSingleCPUNotEnforced(t *testing.T) {
	cur := parse(t, parallelBench1CPU)
	line, slow, err := speedup(cur, "BenchmarkNoCStepMesh8Serial=BenchmarkNoCStepMesh8Workers4", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if slow {
		t.Error("single-CPU runs must never fail the speedup floor")
	}
	if !strings.Contains(line, "not enforced on a single-CPU run") {
		t.Errorf("report %q should say the floor was skipped", line)
	}
}

func TestSpeedupErrors(t *testing.T) {
	cur := parse(t, parallelBench)
	for _, pair := range []string{"bad", "=X", "X=", "BenchmarkNope=BenchmarkNoCStepMesh8Workers4",
		"BenchmarkNoCStepMesh8Serial=BenchmarkNope"} {
		if _, _, err := speedup(cur, pair, 1.5); err == nil {
			t.Errorf("speedup(%q) should error", pair)
		}
	}
}

func TestParseRequire(t *testing.T) {
	reqs, err := parseRequire("CompressSC2=50, BenchmarkNoCStepMesh8Serial=30")
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("parsed %d requirements, want 2: %v", len(reqs), reqs)
	}
	// Names normalize to the Benchmark prefix either way.
	if reqs[0].name != "BenchmarkCompressSC2" || reqs[0].pct != 50 {
		t.Errorf("req[0] = %+v", reqs[0])
	}
	if reqs[1].name != "BenchmarkNoCStepMesh8Serial" || reqs[1].pct != 30 {
		t.Errorf("req[1] = %+v", reqs[1])
	}
	for _, bad := range []string{"", "NoEquals", "=50", "X=notanumber"} {
		if _, err := parseRequire(bad); err == nil {
			t.Errorf("parseRequire(%q) should error", bad)
		}
	}
}

func TestCheckRequired(t *testing.T) {
	old := parse(t, oldBench)
	cur := parse(t, newBench)
	// CompressDelta improved 1625 -> 1100 = 32.3%.
	reqs := []requirement{{name: "BenchmarkCompressDelta", pct: 30}}
	lines, failed, err := checkRequired(old, cur, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Errorf("32%% improvement must pass a 30%% floor: %v", failed)
	}
	if !strings.Contains(lines, "32.3% faster") {
		t.Errorf("report %q should carry the measured improvement", lines)
	}
	// A floor above the measured improvement fails.
	reqs[0].pct = 40
	if _, failed, _ := checkRequired(old, cur, reqs); len(failed) != 1 {
		t.Error("32%% improvement must fail a 40%% floor")
	}
	// A regression (FPC 6476 -> 7500) fails any positive floor.
	if _, failed, _ := checkRequired(old, cur,
		[]requirement{{name: "BenchmarkCompressFPC", pct: 10}}); len(failed) != 1 {
		t.Error("a regression must fail a required improvement")
	}
	// Missing benchmarks are hard errors, not silent passes.
	for _, name := range []string{"BenchmarkNope", "BenchmarkBlockContent"} {
		if _, _, err := checkRequired(old, cur, []requirement{{name: name, pct: 1}}); err == nil {
			t.Errorf("checkRequired(%s) should error on a missing side", name)
		}
	}
}

func TestDeltaPct(t *testing.T) {
	if d := deltaPct(100, 90); d != -10 {
		t.Errorf("deltaPct(100,90) = %v", d)
	}
	if d := deltaPct(0, 50); d != 0 {
		t.Errorf("deltaPct(0,50) = %v, want 0 (guard)", d)
	}
}
