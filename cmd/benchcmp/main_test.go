package main

import (
	"regexp"
	"strings"
	"testing"
)

const oldBench = `
goos: linux
BenchmarkCompressDelta     	    2000	      1625 ns/op	  39.38 MB/s	     144 B/op	       3 allocs/op
BenchmarkCompressDelta     	    2000	      1980 ns/op	  32.32 MB/s	     144 B/op	       3 allocs/op
BenchmarkCompressFPC-8     	    2000	      6476 ns/op	      72 B/op	       7 allocs/op
BenchmarkNoCStepIdle       	    2000	      2736 ns/op
BenchmarkTraceGeneration   	    2000	       845.0 ns/op
BenchmarkTraceGeneration   	    2000	       691.0 ns/op
PASS
`

const newBench = `
BenchmarkCompressDelta-8   	    2000	      1100 ns/op	      80 B/op	       1 allocs/op
BenchmarkCompressFPC       	    2000	      7500 ns/op	      80 B/op	       1 allocs/op
BenchmarkNoCStepIdle-8     	    2000	      2800 ns/op
BenchmarkBlockContent      	    2000	     11618 ns/op
PASS
`

func parse(t *testing.T, s string) map[string]benchResult {
	t.Helper()
	m, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBench(t *testing.T) {
	m := parse(t, oldBench)
	if len(m) != 4 {
		t.Fatalf("parsed %d benches, want 4: %v", len(m), m)
	}
	// Repeated lines (from -count>1) keep the lowest ns/op, whichever
	// order they appear in.
	d := m["BenchmarkCompressDelta"]
	if d.NsPerOp != 1625 || d.BytesPerOp != 144 || d.AllocsPerOp != 3 {
		t.Errorf("CompressDelta = %+v", d)
	}
	// The -8 GOMAXPROCS suffix must be stripped so runs from different
	// machines compare.
	if _, ok := m["BenchmarkCompressFPC"]; !ok {
		t.Error("suffixed name BenchmarkCompressFPC-8 not normalized")
	}
	if n := m["BenchmarkNoCStepIdle"]; n.AllocsPerOp != -1 || n.BytesPerOp != -1 {
		t.Errorf("absent memory fields should be -1, got %+v", n)
	}
	if tg := m["BenchmarkTraceGeneration"]; tg.NsPerOp != 691.0 {
		t.Errorf("min-of-repeats / fractional ns/op parsed as %v", tg.NsPerOp)
	}
}

func TestCompareGate(t *testing.T) {
	old, cur := parse(t, oldBench), parse(t, newBench)
	gate := regexp.MustCompile(`Compress|NoCStep`)
	report, failed := compare(old, cur, gate, 10)
	// FPC regressed 6476 -> 7500 (+15.8%): must fail the 10% gate.
	if len(failed) != 1 || failed[0] != "BenchmarkCompressFPC" {
		t.Errorf("failed = %v, want [BenchmarkCompressFPC]", failed)
	}
	// Delta improved and NoCStepIdle regressed only 2.3%: both pass.
	if !strings.Contains(report, "REGRESSION") {
		t.Error("report should mark the regression")
	}
	if !strings.Contains(report, "(no baseline for BenchmarkBlockContent)") {
		t.Error("new-only benchmarks should be noted")
	}
	// TraceGeneration is absent from the new file: silently skipped from
	// the table but present in neither failure list.
	if strings.Contains(report, "TraceGeneration") {
		t.Error("benchmarks missing from the new run should not be compared")
	}
}

func TestCompareNoGate(t *testing.T) {
	old, cur := parse(t, oldBench), parse(t, newBench)
	_, failed := compare(old, cur, nil, 10)
	if len(failed) != 0 {
		t.Errorf("no gate should never fail, got %v", failed)
	}
}

const parallelBench = `
BenchmarkNoCStepMesh8Serial-4     	    2000	    120000 ns/op
BenchmarkNoCStepMesh8Workers4-4   	    2000	     60000 ns/op
PASS
`

const parallelBench1CPU = `
BenchmarkNoCStepMesh8Serial       	    2000	    120000 ns/op
BenchmarkNoCStepMesh8Workers4     	    2000	    130000 ns/op
PASS
`

func TestParseBenchProcs(t *testing.T) {
	m := parse(t, parallelBench)
	if p := m["BenchmarkNoCStepMesh8Serial"].Procs; p != 4 {
		t.Errorf("Procs = %d, want 4 from the -4 suffix", p)
	}
	if p := parse(t, parallelBench1CPU)["BenchmarkNoCStepMesh8Serial"].Procs; p != 1 {
		t.Errorf("Procs = %d, want 1 when the suffix is absent", p)
	}
}

func TestSpeedupGate(t *testing.T) {
	cur := parse(t, parallelBench)
	pair := "BenchmarkNoCStepMesh8Serial=BenchmarkNoCStepMesh8Workers4"
	line, slow, err := speedup(cur, pair, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if slow {
		t.Error("2.00x speedup must pass a 1.5x floor")
	}
	if !strings.Contains(line, "2.00x") {
		t.Errorf("report %q should carry the 2.00x ratio", line)
	}
	// A floor above the measured ratio fails on a multi-CPU run.
	if _, slow, _ := speedup(cur, pair, 2.5); !slow {
		t.Error("2.00x speedup must fail a 2.5x floor on a multi-CPU run")
	}
}

func TestSpeedupSingleCPUNotEnforced(t *testing.T) {
	cur := parse(t, parallelBench1CPU)
	line, slow, err := speedup(cur, "BenchmarkNoCStepMesh8Serial=BenchmarkNoCStepMesh8Workers4", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if slow {
		t.Error("single-CPU runs must never fail the speedup floor")
	}
	if !strings.Contains(line, "not enforced on a single-CPU run") {
		t.Errorf("report %q should say the floor was skipped", line)
	}
}

func TestSpeedupErrors(t *testing.T) {
	cur := parse(t, parallelBench)
	for _, pair := range []string{"bad", "=X", "X=", "BenchmarkNope=BenchmarkNoCStepMesh8Workers4",
		"BenchmarkNoCStepMesh8Serial=BenchmarkNope"} {
		if _, _, err := speedup(cur, pair, 1.5); err == nil {
			t.Errorf("speedup(%q) should error", pair)
		}
	}
}

func TestDeltaPct(t *testing.T) {
	if d := deltaPct(100, 90); d != -10 {
		t.Errorf("deltaPct(100,90) = %v", d)
	}
	if d := deltaPct(0, 50); d != 0 {
		t.Errorf("deltaPct(0,50) = %v, want 0 (guard)", d)
	}
}
