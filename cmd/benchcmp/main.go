// Command benchcmp compares two `go test -bench` output files and prints
// a benchstat-style delta table. With -gate, benchmarks matching the
// regexp fail the run (exit 1) when their ns/op regresses by more than
// -max-regress percent — the guard rail `make bench-compare` puts around
// the simulator's hot paths.
//
// Usage:
//
//	benchcmp -baseline bench/bench.txt -new bench/new.txt \
//	    -gate 'Compress|NoCStep' -max-regress 10
//
// With -speedup SERIAL=PARALLEL, the ratio of the two named benchmarks'
// ns/op (both from -new) is reported — the two-phase engine's intra-sim
// speedup. -min-speedup fails the run when the ratio is below the floor,
// but only when the run had more than one CPU (GOMAXPROCS suffix > 1):
// single-CPU hosts report the ratio without enforcing it.
//
// With -require 'Name=PCT,...', each named benchmark's ns/op must IMPROVE
// by at least PCT percent over the baseline ((old-new)/old*100 >= PCT) or
// the run fails — the inverse of -gate: it locks in a won optimization
// instead of merely bounding a regression.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// benchResult is one benchmark line's measurements.
type benchResult struct {
	NsPerOp     float64
	BytesPerOp  float64 // -1 when absent
	AllocsPerOp float64 // -1 when absent
	Procs       int     // GOMAXPROCS from the -N name suffix (1 when absent)
}

// benchLine matches `BenchmarkX-8  100  123.4 ns/op  ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

var (
	bytesField  = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsField = regexp.MustCompile(`([0-9.]+) allocs/op`)
)

// parseBench extracts benchmark results from `go test -bench` output.
// Repeated lines for one name (from -count>1) keep the lowest ns/op: the
// minimum is the noise-floor statistic, so best-of-N runs compare stably
// on machines with jittery timers.
func parseBench(r io.Reader) (map[string]benchResult, error) {
	out := make(map[string]benchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcmp: bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; ok && prev.NsPerOp <= ns {
			continue
		}
		res := benchResult{NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1, Procs: 1}
		if m[2] != "" {
			res.Procs, _ = strconv.Atoi(m[2])
		}
		if bm := bytesField.FindStringSubmatch(m[4]); bm != nil {
			res.BytesPerOp, _ = strconv.ParseFloat(bm[1], 64)
		}
		if am := allocsField.FindStringSubmatch(m[4]); am != nil {
			res.AllocsPerOp, _ = strconv.ParseFloat(am[1], 64)
		}
		out[m[1]] = res
	}
	return out, sc.Err()
}

// deltaPct is the relative change from old to new in percent.
func deltaPct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// compare renders the delta table and returns the gated benchmarks whose
// ns/op regressed beyond maxRegress percent.
func compare(old, new map[string]benchResult, gate *regexp.Regexp, maxRegress float64) (string, []string) {
	names := make([]string, 0, len(old))
	for n := range old {
		if _, ok := new[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\told ns/op\tnew ns/op\tdelta\tallocs old\tallocs new")
	var failed []string
	for _, n := range names {
		o, nw := old[n], new[n]
		d := deltaPct(o.NsPerOp, nw.NsPerOp)
		allocOld, allocNew := "-", "-"
		if o.AllocsPerOp >= 0 {
			allocOld = strconv.FormatFloat(o.AllocsPerOp, 'f', -1, 64)
		}
		if nw.AllocsPerOp >= 0 {
			allocNew = strconv.FormatFloat(nw.AllocsPerOp, 'f', -1, 64)
		}
		mark := ""
		if gate != nil && gate.MatchString(n) && d > maxRegress {
			mark = "  << REGRESSION"
			failed = append(failed, n)
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%+.1f%%%s\t%s\t%s\n",
			strings.TrimPrefix(n, "Benchmark"), o.NsPerOp, nw.NsPerOp, d, mark, allocOld, allocNew)
	}
	w.Flush()
	for n := range new {
		if _, ok := old[n]; !ok {
			fmt.Fprintf(&b, "(no baseline for %s)\n", n)
		}
	}
	return b.String(), failed
}

// requirement is one -require entry: benchmark name and its improvement
// floor in percent.
type requirement struct {
	name string
	pct  float64
}

// parseRequire parses 'Name=PCT,Name=PCT,...' (names may omit the
// Benchmark prefix).
func parseRequire(spec string) ([]requirement, error) {
	var reqs []requirement
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("benchcmp: bad -require entry %q, want Name=PCT", part)
		}
		pct, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcmp: bad -require floor in %q: %w", part, err)
		}
		name := kv[0]
		if !strings.HasPrefix(name, "Benchmark") {
			name = "Benchmark" + name
		}
		reqs = append(reqs, requirement{name: name, pct: pct})
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("benchcmp: empty -require spec %q", spec)
	}
	return reqs, nil
}

// checkRequired verifies each required benchmark improved its ns/op by at
// least its floor; improvement is (old-new)/old*100. Returns the report
// lines and the failed requirement names.
func checkRequired(old, cur map[string]benchResult, reqs []requirement) (string, []string, error) {
	var b strings.Builder
	var failed []string
	for _, rq := range reqs {
		o, ok := old[rq.name]
		if !ok {
			return "", nil, fmt.Errorf("benchcmp: -require benchmark %s missing from baseline", rq.name)
		}
		nw, ok := cur[rq.name]
		if !ok {
			return "", nil, fmt.Errorf("benchcmp: -require benchmark %s missing from new results", rq.name)
		}
		if o.NsPerOp == 0 {
			return "", nil, fmt.Errorf("benchcmp: -require benchmark %s has zero baseline ns/op", rq.name)
		}
		improved := (o.NsPerOp - nw.NsPerOp) / o.NsPerOp * 100
		mark := fmt.Sprintf("  [>= %.0f%% floor]", rq.pct)
		if improved < rq.pct {
			mark = fmt.Sprintf("  << BELOW %.0f%% FLOOR", rq.pct)
			failed = append(failed, rq.name)
		}
		fmt.Fprintf(&b, "require %s: %.1f%% faster%s\n",
			strings.TrimPrefix(rq.name, "Benchmark"), improved, mark)
	}
	return b.String(), failed, nil
}

// speedup reports the wall-clock ratio between a serial benchmark and
// its parallel-engine counterpart, both read from the NEW results (the
// pair measures this machine, so comparing against a baseline from
// another host would be meaningless). The min gate only arms when the
// parallel benchmark actually had more than one CPU (its -N GOMAXPROCS
// suffix): on a single-CPU host a compute-bound speedup is physically
// impossible, so the ratio is reported but not enforced.
func speedup(cur map[string]benchResult, pair string, min float64) (string, bool, error) {
	names := strings.SplitN(pair, "=", 2)
	if len(names) != 2 || names[0] == "" || names[1] == "" {
		return "", false, fmt.Errorf("benchcmp: bad -speedup %q, want SERIAL=PARALLEL", pair)
	}
	ser, ok := cur[names[0]]
	if !ok {
		return "", false, fmt.Errorf("benchcmp: -speedup benchmark %s missing from new results", names[0])
	}
	par, ok := cur[names[1]]
	if !ok {
		return "", false, fmt.Errorf("benchcmp: -speedup benchmark %s missing from new results", names[1])
	}
	if par.NsPerOp == 0 {
		return "", false, fmt.Errorf("benchcmp: -speedup benchmark %s has zero ns/op", names[1])
	}
	ratio := ser.NsPerOp / par.NsPerOp
	line := fmt.Sprintf("speedup %s / %s: %.2fx (GOMAXPROCS=%d)",
		strings.TrimPrefix(names[0], "Benchmark"), strings.TrimPrefix(names[1], "Benchmark"),
		ratio, par.Procs)
	if min <= 0 {
		return line + "\n", false, nil
	}
	if par.Procs <= 1 {
		return line + fmt.Sprintf("  [%.1fx floor not enforced on a single-CPU run]\n", min), false, nil
	}
	if ratio < min {
		return line + fmt.Sprintf("  << BELOW %.1fx FLOOR\n", min), true, nil
	}
	return line + fmt.Sprintf("  [>= %.1fx floor]\n", min), false, nil
}

func main() {
	var (
		baseline   = flag.String("baseline", "bench/bench.txt", "baseline `go test -bench` output")
		newFile    = flag.String("new", "", "new `go test -bench` output (required)")
		gateExpr   = flag.String("gate", "", "regexp of benchmarks that fail the run on regression")
		maxRegress = flag.Float64("max-regress", 10, "allowed ns/op regression for gated benchmarks, percent")
		speedPair  = flag.String("speedup", "", "SERIAL=PARALLEL benchmark pair: report new-run speedup of PARALLEL over SERIAL")
		minSpeedup = flag.Float64("min-speedup", 0, "fail when the -speedup ratio is below this (only on multi-CPU runs)")
		requireStr = flag.String("require", "", "'Name=PCT,...': each benchmark must improve ns/op by at least PCT percent over the baseline")
	)
	flag.Parse()
	if *newFile == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -new is required")
		flag.Usage()
		os.Exit(2)
	}
	old, err := parseFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cur, err := parseFile(*newFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var gate *regexp.Regexp
	if *gateExpr != "" {
		gate, err = regexp.Compile(*gateExpr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp: bad -gate:", err)
			os.Exit(2)
		}
	}
	report, failed := compare(old, cur, gate, *maxRegress)
	fmt.Print(report)
	tooSlow := false
	if *speedPair != "" {
		line, slow, err := speedup(cur, *speedPair, *minSpeedup)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(line)
		tooSlow = slow
	}
	var unmet []string
	if *requireStr != "" {
		reqs, err := parseRequire(*requireStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		lines, miss, err := checkRequired(old, cur, reqs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(lines)
		unmet = miss
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d gated benchmark(s) regressed more than %.0f%%: %s\n",
			len(failed), *maxRegress, strings.Join(failed, ", "))
		os.Exit(1)
	}
	if tooSlow {
		fmt.Fprintf(os.Stderr, "benchcmp: parallel-engine speedup below the %.1fx floor\n", *minSpeedup)
		os.Exit(1)
	}
	if len(unmet) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d required improvement(s) not met: %s\n",
			len(unmet), strings.Join(unmet, ", "))
		os.Exit(1)
	}
}

// parseFile parses one bench output file.
func parseFile(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("benchcmp: %w", err)
	}
	defer f.Close()
	return parseBench(f)
}
