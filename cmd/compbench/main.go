// Command compbench measures compression ratios of every implemented
// scheme over the synthetic PARSEC block populations, per benchmark and
// per value-pattern class — an exploration companion to Table 1.
//
//	compbench                  # ratio matrix, all schemes x all benchmarks
//	compbench -blocks 2000     # larger sample
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/trace"
)

func main() {
	blocks := flag.Int("blocks", 800, "sample blocks per benchmark")
	flag.Parse()
	if err := run(*blocks); err != nil {
		fmt.Fprintln(os.Stderr, "compbench:", err)
		os.Exit(1)
	}
}

func run(blocks int) error {
	algs := []string{"delta", "bdi", "fpc", "sfpc", "cpack", "sc2", "fvc"}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark\t%s\n", strings.Join(algs, "\t"))
	totals := make(map[string][2]int) // raw, compressed
	for _, p := range trace.Profiles() {
		fmt.Fprintf(w, "%s", p.Name)
		for _, name := range algs {
			alg, err := compress.New(name)
			if err != nil {
				return err
			}
			type trainable interface{ Train([][]byte) }
			if s, ok := alg.(trainable); ok {
				var train [][]byte
				for i := 0; i < blocks; i++ {
					train = append(train, p.Content(trace.PrivateBase(i%8)+uint64(i)*7))
				}
				s.Train(train)
			}
			raw, comp := 0, 0
			for i := 0; i < blocks; i++ {
				b := p.Content(trace.PrivateBase(9) + uint64(i)*3)
				c := alg.Compress(b)
				raw += compress.BlockSize
				comp += c.SizeBytes()
			}
			t := totals[name]
			totals[name] = [2]int{t[0] + raw, t[1] + comp}
			fmt.Fprintf(w, "\t%.2f", float64(raw)/float64(comp))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "overall")
	for _, name := range algs {
		t := totals[name]
		fmt.Fprintf(w, "\t%.2f", float64(t[0])/float64(t[1]))
	}
	fmt.Fprintln(w)
	return w.Flush()
}
