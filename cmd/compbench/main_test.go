package main

import "testing"

func TestCompbenchRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 7 algorithms x 12 profiles")
	}
	if err := run(60); err != nil {
		t.Fatal(err)
	}
}
