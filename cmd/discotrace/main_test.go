package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/disco-sim/disco/internal/tracefmt"
)

// buildTrace assembles a tiny 2x2-mesh trace with two delivered packets
// and one engine job span.
func buildTrace(t *testing.T) []byte {
	t.Helper()
	var buf []byte
	buf = tracefmt.AppendHeader(buf, 4)
	rec := func(r tracefmt.Record) {
		buf = tracefmt.AppendRecord(buf, &r)
	}
	p1 := tracefmt.PacketInfo{ID: 1, Src: 0, Dst: 3, Flits: 5, Hops: 2,
		Queueing: 10, EngineCycles: 6, EngineStall: 2}
	p2 := tracefmt.PacketInfo{ID: 2, Src: 1, Dst: 2, Flits: 5, Hops: 2,
		Queueing: 0, EngineCycles: 0, EngineStall: 0}
	rec(tracefmt.Record{Cycle: 0, Router: 0, Kind: tracefmt.KindInject, HasPacket: true, Pkt: p1})
	rec(tracefmt.Record{Cycle: 1, Router: 1, Kind: tracefmt.KindInject, HasPacket: true, Pkt: p2})
	rec(tracefmt.Record{Cycle: 2, Router: 0, Kind: tracefmt.KindSAGrant, HasPacket: true, Pkt: p1})
	rec(tracefmt.Record{Cycle: 3, Router: 0, Kind: tracefmt.KindEngineStart, HasPacket: true, Pkt: p1})
	rec(tracefmt.Record{Cycle: 9, Router: 0, Kind: tracefmt.KindEngineDone, HasPacket: true, Pkt: p1})
	rec(tracefmt.Record{Cycle: 11, Router: 2, Kind: tracefmt.KindEject, HasPacket: true, Pkt: p2})
	rec(tracefmt.Record{Cycle: 30, Router: 3, Kind: tracefmt.KindEject, HasPacket: true, Pkt: p1})
	return buf
}

func analyzeBytes(t *testing.T, raw []byte) *analysis {
	t.Helper()
	r, err := tracefmt.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	a, err := analyze(r)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

func TestAnalyzeBreakdown(t *testing.T) {
	a := analyzeBytes(t, buildTrace(t))
	if a.records != 7 || a.nodes != 4 {
		t.Fatalf("records=%d nodes=%d, want 7, 4", a.records, a.nodes)
	}
	if len(a.pkts) != 2 {
		t.Fatalf("delivered packets = %d, want 2", len(a.pkts))
	}
	// Ejection order: p2 first (cycle 11), then p1 (cycle 30).
	p2, p1 := a.pkts[0], a.pkts[1]
	if p1.id != 1 || p2.id != 2 {
		t.Fatalf("packet order: got ids %d,%d", p2.id, p1.id)
	}
	// p1: total 30, stall 10, exposed engine 2 -> queue 8, serial 20.
	if p1.total != 30 || p1.queue != 8 || p1.engine != 2 || p1.serial != 20 {
		t.Errorf("p1 breakdown = total %d queue %d engine %d serial %d, want 30/8/2/20",
			p1.total, p1.queue, p1.engine, p1.serial)
	}
	if p1.engineBusy != 6 || p1.engineHidden != 4 {
		t.Errorf("p1 engine busy/hidden = %d/%d, want 6/4", p1.engineBusy, p1.engineHidden)
	}
	// p2: pure serialization.
	if p2.total != 10 || p2.queue != 0 || p2.engine != 0 || p2.serial != 10 {
		t.Errorf("p2 breakdown = total %d queue %d engine %d serial %d, want 10/0/0/10",
			p2.total, p2.queue, p2.engine, p2.serial)
	}
	// Aggregate overlap: 4 of 6 engine cycles hidden.
	if got := a.overlapRatio(); got < 0.66 || got > 0.67 {
		t.Errorf("overlapRatio = %v, want 4/6", got)
	}
}

func TestAnalyzeEngineSpans(t *testing.T) {
	a := analyzeBytes(t, buildTrace(t))
	rs := a.routers[0]
	if rs == nil {
		t.Fatal("router 0 missing")
	}
	if rs.engineStarts != 1 || rs.engineEnds != 1 {
		t.Errorf("engine starts/ends = %d/%d, want 1/1", rs.engineStarts, rs.engineEnds)
	}
	if rs.engineBusy != 6 { // start cycle 3 .. done cycle 9
		t.Errorf("engineBusy = %d, want 6", rs.engineBusy)
	}
	if rs.saGrants != 1 {
		t.Errorf("saGrants = %d, want 1", rs.saGrants)
	}
}

func TestAnalyzeIgnoresUnpairedEject(t *testing.T) {
	var buf []byte
	buf = tracefmt.AppendHeader(buf, 4)
	// Eject with no matching inject (tracing attached mid-run).
	r := tracefmt.Record{Cycle: 5, Router: 0, Kind: tracefmt.KindEject,
		HasPacket: true, Pkt: tracefmt.PacketInfo{ID: 9}}
	buf = tracefmt.AppendRecord(buf, &r)
	a := analyzeBytes(t, buf)
	if len(a.pkts) != 0 {
		t.Fatalf("unpaired eject produced %d packets, want 0", len(a.pkts))
	}
}

func TestRenderReport(t *testing.T) {
	a := analyzeBytes(t, buildTrace(t))
	var out strings.Builder
	if err := a.render(&out, 3, true); err != nil {
		t.Fatalf("render: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"7 records",
		"2 delivered packets",
		"overlap ratio 0.67",
		"engine starts per router",
		"engine utilization",
		"slowest packets",
		"1->2", // p2's route in the slowest table
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q\n---\n%s", want, s)
		}
	}
	// Determinism: rendering twice yields identical bytes.
	var again strings.Builder
	if err := a.render(&again, 3, true); err != nil {
		t.Fatalf("render#2: %v", err)
	}
	if again.String() != s {
		t.Error("render output not deterministic")
	}
}

// TestSlowestTieBreakByPacketID is the regression test for the top-N
// "slowest packets" ordering: packets with equal latency must be listed
// by ascending packet ID, no matter the order they were delivered in —
// the report has to be byte-stable across runs.
func TestSlowestTieBreakByPacketID(t *testing.T) {
	var buf []byte
	buf = tracefmt.AppendHeader(buf, 4)
	rec := func(r tracefmt.Record) {
		buf = tracefmt.AppendRecord(buf, &r)
	}
	// One genuinely slower packet (id 6, total 40) and four packets tied
	// at total 20, delivered in a deliberately scrambled id order.
	tied := []uint64{5, 3, 8, 1}
	for i, id := range tied {
		p := tracefmt.PacketInfo{ID: id, Src: 0, Dst: 3, Flits: 5, Hops: 2}
		rec(tracefmt.Record{Cycle: uint64(i), Router: 0, Kind: tracefmt.KindInject, HasPacket: true, Pkt: p})
		rec(tracefmt.Record{Cycle: uint64(i) + 20, Router: 3, Kind: tracefmt.KindEject, HasPacket: true, Pkt: p})
	}
	slow := tracefmt.PacketInfo{ID: 6, Src: 1, Dst: 2, Flits: 5, Hops: 2}
	rec(tracefmt.Record{Cycle: 0, Router: 1, Kind: tracefmt.KindInject, HasPacket: true, Pkt: slow})
	rec(tracefmt.Record{Cycle: 40, Router: 2, Kind: tracefmt.KindEject, HasPacket: true, Pkt: slow})

	a := analyzeBytes(t, buf)
	var out strings.Builder
	if err := a.renderSlowest(&out, 5); err != nil {
		t.Fatalf("renderSlowest: %v", err)
	}
	var ids []string
	for _, line := range strings.Split(out.String(), "\n") {
		f := strings.Fields(line)
		if len(f) > 1 && strings.Contains(f[1], "->") {
			ids = append(ids, f[0])
		}
	}
	want := []string{"6", "1", "3", "5", "8"}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Errorf("slowest-packet order = %v, want %v (latency desc, then packet ID asc)", ids, want)
	}
}

func TestRenderEmptyTrace(t *testing.T) {
	var buf []byte
	buf = tracefmt.AppendHeader(buf, 4)
	a := analyzeBytes(t, buf)
	var out strings.Builder
	if err := a.render(&out, 5, true); err != nil {
		t.Fatalf("render: %v", err)
	}
	if !strings.Contains(out.String(), "empty trace") {
		t.Errorf("want empty-trace notice, got %q", out.String())
	}
}
