// Command discotrace analyzes binary simulator traces (written with
// discosim -trace-bin or any noc.BinaryTracer) offline: per-packet
// latency breakdowns, the DISCO engine-overlap ratio, per-router
// activity heatmaps, engine utilization and the slowest packets.
//
// Usage:
//
//	discotrace trace.bin
//	discotrace -top 20 -no-heatmap trace.bin
//	discotrace -perfetto out.json trace.bin   # trace-event JSON for ui.perfetto.dev
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"github.com/disco-sim/disco/internal/stats"
	"github.com/disco-sim/disco/internal/tracefmt"
)

func main() {
	var (
		topN      = flag.Int("top", 10, "number of slowest packets to list")
		noHeatmap = flag.Bool("no-heatmap", false, "skip the per-router heatmap tables")
		perfetto  = flag.String("perfetto", "", "write Perfetto/Chrome trace-event JSON to this file instead of the text report")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: discotrace [flags] trace.bin")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "discotrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	r, err := tracefmt.NewReader(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "discotrace:", err)
		os.Exit(1)
	}
	if *perfetto != "" {
		out, err := os.Create(*perfetto)
		if err != nil {
			fmt.Fprintln(os.Stderr, "discotrace:", err)
			os.Exit(1)
		}
		if err := exportPerfetto(r, out); err != nil {
			_ = out.Close()
			fmt.Fprintln(os.Stderr, "discotrace:", err)
			os.Exit(1)
		}
		if err := out.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "discotrace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *perfetto)
		return
	}
	a, err := analyze(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "discotrace:", err)
		os.Exit(1)
	}
	if err := a.render(os.Stdout, *topN, !*noHeatmap); err != nil {
		fmt.Fprintln(os.Stderr, "discotrace:", err)
		os.Exit(1)
	}
}

// pktView is one delivered packet reconstructed from its records.
type pktView struct {
	id       uint64
	src, dst int
	class    uint8
	inject   uint64
	eject    uint64

	total, queue, serial, engine uint64
	engineBusy, engineHidden     uint64
	hops, conversions            int
}

// breakdown splits the packet latency the same way noc.Packet.Breakdown
// does: stalls clamped to the latency, engine-exposed clamped to the
// stalls, serialization as the remainder.
func breakdown(inject uint64, rec *tracefmt.PacketInfo, eject uint64) pktView {
	v := pktView{
		id: rec.ID, src: rec.Src, dst: rec.Dst, class: rec.Class,
		inject: inject, eject: eject,
		hops: rec.Hops, conversions: rec.Conversions,
	}
	v.total = eject - inject
	stall := rec.Queueing
	if stall > v.total {
		stall = v.total
	}
	engine := rec.EngineStall
	if engine > stall {
		engine = stall
	}
	v.queue = stall - engine
	v.engine = engine
	v.serial = v.total - stall
	v.engineBusy = rec.EngineCycles
	if rec.EngineCycles > rec.EngineStall {
		v.engineHidden = rec.EngineCycles - rec.EngineStall
	}
	return v
}

// routerStats is per-router activity accumulated from events.
type routerStats struct {
	routes, saGrants, ejects uint64
	engineStarts, engineEnds uint64
	engineBusy               uint64
	engineStartCycle         uint64 // in-flight job start (stamp+1, 0 = idle)
}

// analysis is everything discotrace derives from one trace.
type analysis struct {
	nodes    int
	records  uint64
	byKind   map[tracefmt.Kind]uint64
	first    uint64
	last     uint64
	routers  map[int]*routerStats
	injected map[uint64]uint64 // packet id -> inject cycle
	pkts     []pktView         // delivered packets, in ejection order

	queueMean, serialMean, engineMean, totalMean stats.Mean
	engineBusySum, engineExposedSum              uint64
}

// analyze consumes every record of the trace.
func analyze(r *tracefmt.Reader) (*analysis, error) {
	a := &analysis{
		nodes:    r.Nodes(),
		byKind:   map[tracefmt.Kind]uint64{},
		routers:  map[int]*routerStats{},
		injected: map[uint64]uint64{},
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		a.records++
		a.byKind[rec.Kind]++
		if a.records == 1 || rec.Cycle < a.first {
			a.first = rec.Cycle
		}
		if rec.Cycle > a.last {
			a.last = rec.Cycle
		}
		var rs *routerStats
		if rec.Router >= 0 {
			rs = a.routers[rec.Router]
			if rs == nil {
				rs = &routerStats{}
				a.routers[rec.Router] = rs
			}
		}
		switch rec.Kind {
		case tracefmt.KindInject:
			if rec.HasPacket {
				a.injected[rec.Pkt.ID] = rec.Cycle
			}
		case tracefmt.KindEject:
			if rs != nil {
				rs.ejects++
			}
			if !rec.HasPacket {
				break
			}
			inject, ok := a.injected[rec.Pkt.ID]
			if !ok {
				break // injected before tracing started
			}
			delete(a.injected, rec.Pkt.ID)
			v := breakdown(inject, &rec.Pkt, rec.Cycle)
			a.pkts = append(a.pkts, v)
			a.totalMean.Add(float64(v.total))
			a.queueMean.Add(float64(v.queue))
			a.serialMean.Add(float64(v.serial))
			a.engineMean.Add(float64(v.engine))
			a.engineBusySum += v.engineBusy
			a.engineExposedSum += v.engine
		case tracefmt.KindRoute:
			if rs != nil {
				rs.routes++
			}
		case tracefmt.KindSAGrant:
			if rs != nil {
				rs.saGrants++
			}
		case tracefmt.KindEngineStart:
			if rs != nil {
				rs.engineStarts++
				rs.engineStartCycle = rec.Cycle + 1
			}
		case tracefmt.KindEngineDone, tracefmt.KindEngineFail, tracefmt.KindEngineRelease:
			if rs != nil {
				rs.engineEnds++
				if rs.engineStartCycle != 0 {
					rs.engineBusy += rec.Cycle - (rs.engineStartCycle - 1)
					rs.engineStartCycle = 0
				}
			}
		}
	}
	if a.nodes == 0 { // header from an old writer: infer the mesh size
		maxID := -1
		for id := range a.routers {
			if id > maxID {
				maxID = id
			}
		}
		a.nodes = maxID + 1
	}
	return a, nil
}

// overlapRatio is the aggregate hidden fraction of engine service time.
func (a *analysis) overlapRatio() float64 {
	if a.engineBusySum == 0 {
		return 0
	}
	return float64(a.engineBusySum-a.engineExposedSum) / float64(a.engineBusySum)
}

// span is the traced cycle range.
func (a *analysis) span() uint64 {
	if a.records == 0 {
		return 0
	}
	return a.last - a.first + 1
}

// render prints the report.
func (a *analysis) render(w io.Writer, topN int, heatmap bool) error {
	if a.records == 0 {
		_, err := fmt.Fprintln(w, "empty trace")
		return err
	}
	if _, err := fmt.Fprintf(w,
		"trace: %d records over cycles %d..%d (%d nodes)\n",
		a.records, a.first, a.last, a.nodes); err != nil {
		return err
	}
	if err := a.renderBreakdown(w); err != nil {
		return err
	}
	if heatmap {
		if err := a.renderHeatmaps(w); err != nil {
			return err
		}
	}
	if err := a.renderEngines(w); err != nil {
		return err
	}
	return a.renderSlowest(w, topN)
}

// renderBreakdown prints the aggregate latency decomposition and the
// overlap ratio — the trace-level view of the paper's Section 3.2
// claim that transform latency hides under queuing.
func (a *analysis) renderBreakdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n== packet latency breakdown (%d delivered packets) ==\n",
		len(a.pkts)); err != nil {
		return err
	}
	if len(a.pkts) == 0 {
		_, err := fmt.Fprintln(w, "no complete inject->eject pairs in trace")
		return err
	}
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "component\tmean cyc/pkt\tshare")
	total := a.totalMean.Mean()
	row := func(name string, m *stats.Mean) {
		share := 0.0
		if total > 0 {
			share = m.Mean() / total
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f%%\n", name, m.Mean(), share*100)
	}
	row("queue (contention)", &a.queueMean)
	row("serialization+links", &a.serialMean)
	row("engine (exposed)", &a.engineMean)
	fmt.Fprintf(tw, "total\t%.2f\t\n", total)
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"engine overlap: %d of %d engine cycles hidden under stalls -> overlap ratio %.2f\n",
		a.engineBusySum-a.engineExposedSum, a.engineBusySum, a.overlapRatio())
	return err
}

// renderHeatmaps prints K×K activity grids.
func (a *analysis) renderHeatmaps(w io.Writer) error {
	k := int(math.Sqrt(float64(a.nodes)))
	if k*k != a.nodes || k == 0 {
		return nil // not a square mesh; skip grids
	}
	grids := []struct {
		title string
		get   func(*routerStats) uint64
	}{
		{"switch grants per router (packets switched)", func(r *routerStats) uint64 { return r.saGrants }},
		{"engine starts per router", func(r *routerStats) uint64 { return r.engineStarts }},
	}
	for _, g := range grids {
		any := false
		for _, rs := range a.routers {
			if g.get(rs) > 0 {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		if _, err := fmt.Fprintf(w, "\n== %s ==\n", g.title); err != nil {
			return err
		}
		for y := 0; y < k; y++ {
			var b strings.Builder
			for x := 0; x < k; x++ {
				v := uint64(0)
				if rs := a.routers[y*k+x]; rs != nil {
					v = g.get(rs)
				}
				fmt.Fprintf(&b, "%8d", v)
			}
			if _, err := fmt.Fprintln(w, b.String()); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderEngines prints per-router engine utilization.
func (a *analysis) renderEngines(w io.Writer) error {
	ids := make([]int, 0, len(a.routers))
	for id := range a.routers {
		if a.routers[id].engineStarts > 0 {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	sort.Ints(ids)
	if _, err := fmt.Fprintf(w, "\n== engine utilization (traced span %d cycles) ==\n", a.span()); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "router\tstarts\tends\tbusy cyc\tutilization")
	for _, id := range ids {
		rs := a.routers[id]
		util := 0.0
		if a.span() > 0 {
			util = float64(rs.engineBusy) / float64(a.span())
		}
		fmt.Fprintf(tw, "r%02d\t%d\t%d\t%d\t%.1f%%\n",
			id, rs.engineStarts, rs.engineEnds, rs.engineBusy, util*100)
	}
	return tw.Flush()
}

// renderSlowest prints the top-N slowest delivered packets.
func (a *analysis) renderSlowest(w io.Writer, n int) error {
	if n <= 0 || len(a.pkts) == 0 {
		return nil
	}
	sorted := make([]pktView, len(a.pkts))
	copy(sorted, a.pkts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].total != sorted[j].total {
			return sorted[i].total > sorted[j].total
		}
		return sorted[i].id < sorted[j].id // deterministic tie-break
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	if _, err := fmt.Fprintf(w, "\n== %d slowest packets ==\n", n); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "pkt\troute\ttotal\tqueue\tserial\tengine\thops\tconv\tinject@")
	for _, v := range sorted[:n] {
		fmt.Fprintf(tw, "%d\t%d->%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			v.id, v.src, v.dst, v.total, v.queue, v.serial, v.engine,
			v.hops, v.conversions, v.inject)
	}
	return tw.Flush()
}
