package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/disco"
	"github.com/disco-sim/disco/internal/fault"
	"github.com/disco-sim/disco/internal/noc"
	"github.com/disco-sim/disco/internal/tracefmt"
)

var update = flag.Bool("update", false, "rewrite the committed Perfetto golden JSON")

// buildFixtureTrace runs a fixed-seed DISCO load with fault injection
// armed (so the export covers engine spans, packet spans AND
// fault/breaker instants) and returns the binary trace bytes. The run
// is fully deterministic, so the exported JSON can be a committed
// golden artifact.
func buildFixtureTrace(t *testing.T) []byte {
	t.Helper()
	alg, err := compress.New("delta")
	if err != nil {
		t.Fatal(err)
	}
	cfg := noc.DefaultConfig()
	dc := disco.DefaultConfig(alg)
	cfg.Disco = &dc
	cfg.Fault = &fault.Spec{Seed: 9, EngineRate: 0.05, EngineStuck: 8,
		BreakerK: 3, BreakerCooldown: 64,
		PayloadRate: 0.01, CreditRate: 0.01, CreditRecovery: 32}
	n, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	var buf bytes.Buffer
	bt := noc.NewBinaryTracer(&buf, cfg.Nodes())
	n.SetTracer(bt)
	tc := noc.DefaultTraffic()
	tc.Seed, tc.InjectionRate = 42, 0.05
	g := noc.NewTrafficGen(n, tc)
	for cycle := 0; cycle < 200; cycle++ {
		g.Step()
		n.Step()
	}
	if !n.RunUntilQuiescent(100000) {
		t.Fatal("fixture network did not drain")
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPerfettoGoldenExport pins the exporter's output byte-for-byte
// against the committed golden (regenerate with -update after an
// intentional format change), and sanity-checks the document structure.
func TestPerfettoGoldenExport(t *testing.T) {
	bin := buildFixtureTrace(t)
	r, err := tracefmt.NewReader(bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := exportPerfetto(r, &out); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, out.Len())
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (regenerate with go test -run Perfetto -update): %v", err)
	}
	if !bytes.Equal(want, out.Bytes()) {
		t.Errorf("export differs from committed golden %s (%d vs %d bytes); regenerate with -update if the change is intentional",
			golden, out.Len(), len(want))
	}

	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no trace events")
	}
	counts := map[string]int{}
	var engineSpans, packetSpans, instants, threadNames int
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		counts[ph]++
		name, _ := ev["name"].(string)
		switch {
		case ph == "X" && name == "engine":
			engineSpans++
		case ph == "b" && ev["cat"] == "packet":
			packetSpans++
		case ph == "i":
			instants++
		case ph == "M" && name == "thread_name":
			threadNames++
		}
	}
	if engineSpans == 0 {
		t.Error("no engine X spans in export")
	}
	if packetSpans == 0 {
		t.Error("no packet async spans in export")
	}
	if instants == 0 {
		t.Error("no fault instants in export (fault injection was armed)")
	}
	if threadNames == 0 {
		t.Error("no router thread_name metadata in export")
	}
	if counts["b"] != counts["e"] {
		t.Errorf("unbalanced async spans: %d begins vs %d ends", counts["b"], counts["e"])
	}
}

// TestPerfettoExportDeterministic guards the golden's premise: two
// exports of the same trace are byte-identical.
func TestPerfettoExportDeterministic(t *testing.T) {
	bin := buildFixtureTrace(t)
	render := func() []byte {
		r, err := tracefmt.NewReader(bytes.NewReader(bin))
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := exportPerfetto(r, &out); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Error("same trace exported different bytes")
	}
}
