package main

// Perfetto/Chrome trace-event export (-perfetto out.json): converts the
// binary trace into the JSON trace-event format that ui.perfetto.dev
// and chrome://tracing render, so a run can be inspected visually —
// engine service spans per router track, fault/breaker instants, and
// every delivered packet as a nested async span split into its
// queue/engine/serialization segments.
//
// Conventions:
//   - 1 simulated cycle = 1 trace microsecond (ts/dur are in µs).
//   - pid 0 is the NoC (one thread track per router), pid 1 holds the
//     packet async spans.
//   - Output is deterministic: events are emitted in stream order (the
//     trace itself is deterministic), metadata last in sorted router
//     order, and every record is marshaled with fixed field order — the
//     golden test diffs the bytes.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/disco-sim/disco/internal/tracefmt"
)

const (
	pidNoC = 0 // router engine/fault tracks
	pidPkt = 1 // packet lifetime async spans
)

// traceEvent is one JSON trace-event record (the subset of the spec the
// exporter uses).
type traceEvent struct {
	Name  string         `json:"name,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   *uint64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// instantKinds are the event kinds rendered as thread-scoped instants
// on their router's track.
var instantKinds = map[tracefmt.Kind]bool{
	tracefmt.KindEngineFault:  true,
	tracefmt.KindBreakerTrip:  true,
	tracefmt.KindBreakerArm:   true,
	tracefmt.KindPayloadFlip:  true,
	tracefmt.KindFaultRecover: true,
	tracefmt.KindCreditDrop:   true,
	tracefmt.KindStall:        true,
}

// classNames mirrors noc.Class.String for the wire class codes.
var classNames = [...]string{"request", "response", "coherence"}

func className(c uint8) string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", c)
}

// exportPerfetto streams the trace into trace-event JSON.
func exportPerfetto(r *tracefmt.Reader, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	var emitErr error
	emit := func(ev traceEvent) {
		if emitErr != nil {
			return
		}
		data, err := json.Marshal(ev)
		if err != nil {
			emitErr = err
			return
		}
		if !first {
			if _, err := io.WriteString(bw, ",\n"); err != nil {
				emitErr = err
				return
			}
		}
		first = false
		if _, err := bw.Write(data); err != nil {
			emitErr = err
		}
	}

	routers := map[int]bool{}
	engineStart := map[int]uint64{} // router -> in-flight start stamp+1
	enginePkt := map[int]uint64{}   // router -> in-flight job's packet id
	injected := map[uint64]uint64{} // packet id -> inject cycle
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if rec.Router >= 0 {
			routers[rec.Router] = true
		}
		switch {
		case rec.Kind == tracefmt.KindInject && rec.HasPacket:
			injected[rec.Pkt.ID] = rec.Cycle
		case rec.Kind == tracefmt.KindEject && rec.HasPacket:
			inject, ok := injected[rec.Pkt.ID]
			if !ok {
				break // injected before tracing started
			}
			delete(injected, rec.Pkt.ID)
			emitPacket(emit, inject, &rec.Pkt, rec.Cycle)
		case rec.Kind == tracefmt.KindEngineStart && rec.Router >= 0:
			engineStart[rec.Router] = rec.Cycle + 1
			if rec.HasPacket {
				enginePkt[rec.Router] = rec.Pkt.ID
			} else {
				delete(enginePkt, rec.Router)
			}
		case (rec.Kind == tracefmt.KindEngineDone || rec.Kind == tracefmt.KindEngineFail ||
			rec.Kind == tracefmt.KindEngineRelease) && rec.Router >= 0:
			stamp, ok := engineStart[rec.Router]
			if !ok || stamp == 0 {
				break // started before tracing began
			}
			start := stamp - 1
			delete(engineStart, rec.Router)
			dur := rec.Cycle - start
			args := map[string]any{"outcome": rec.Kind.String()}
			if id, ok := enginePkt[rec.Router]; ok {
				args["packet"] = id
				delete(enginePkt, rec.Router)
			}
			emit(traceEvent{Name: "engine", Cat: "engine", Ph: "X",
				TS: start, Dur: &dur, PID: pidNoC, TID: rec.Router, Args: args})
		case instantKinds[rec.Kind] && rec.Router >= 0:
			var args map[string]any
			if rec.HasPacket {
				args = map[string]any{"packet": rec.Pkt.ID}
			}
			emit(traceEvent{Name: rec.Kind.String(), Cat: "fault", Ph: "i",
				TS: rec.Cycle, PID: pidNoC, TID: rec.Router, Scope: "t", Args: args})
		}
	}

	// Metadata last (viewers sort by ts anyway), routers in sorted order.
	emit(traceEvent{Name: "process_name", Ph: "M", PID: pidNoC,
		Args: map[string]any{"name": "noc"}})
	emit(traceEvent{Name: "process_name", Ph: "M", PID: pidPkt,
		Args: map[string]any{"name": "packets"}})
	ids := make([]int, 0, len(routers))
	for id := range routers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		emit(traceEvent{Name: "thread_name", Ph: "M", PID: pidNoC, TID: id,
			Args: map[string]any{"name": fmt.Sprintf("router %d", id)}})
	}
	if emitErr != nil {
		return emitErr
	}
	if _, err := io.WriteString(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// emitPacket renders one delivered packet as a nested async span: the
// outer inject->eject span wraps queue/engine/serialization child
// segments laid out from the packet's latency breakdown (same clamping
// rule as noc.Packet.Breakdown — stalls bounded by the total, exposed
// engine time bounded by the stalls).
func emitPacket(emit func(traceEvent), inject uint64, pk *tracefmt.PacketInfo, eject uint64) {
	total := eject - inject
	stall := pk.Queueing
	if stall > total {
		stall = total
	}
	engine := pk.EngineStall
	if engine > stall {
		engine = stall
	}
	queue := stall - engine
	serial := total - stall

	id := fmt.Sprintf("%d", pk.ID)
	name := fmt.Sprintf("pkt %d->%d", pk.Src, pk.Dst)
	emit(traceEvent{Name: name, Cat: "packet", Ph: "b", TS: inject,
		PID: pidPkt, TID: 0, ID: id, Args: map[string]any{
			"id": pk.ID, "class": className(pk.Class), "flits": pk.Flits,
			"hops": pk.Hops, "conversions": pk.Conversions,
			"compressed": pk.Compressed(),
		}})
	ts := inject
	for _, seg := range [...]struct {
		name string
		dur  uint64
	}{{"queue", queue}, {"engine", engine}, {"serialization", serial}} {
		if seg.dur == 0 {
			continue
		}
		emit(traceEvent{Name: seg.name, Cat: "packet", Ph: "b", TS: ts,
			PID: pidPkt, TID: 0, ID: id})
		ts += seg.dur
		emit(traceEvent{Name: seg.name, Cat: "packet", Ph: "e", TS: ts,
			PID: pidPkt, TID: 0, ID: id})
	}
	emit(traceEvent{Name: name, Cat: "packet", Ph: "e", TS: eject,
		PID: pidPkt, TID: 0, ID: id})
}
