// Command nocsim drives the cycle-accurate mesh simulator with synthetic
// open-loop traffic (Booksim-style) and reports latency/throughput and
// DISCO engine statistics. Useful for exploring the NoC in isolation:
//
//	nocsim -k 4 -rate 0.05 -pattern hotspot -disco
//	nocsim -k 8 -rate 0.02 -cycles 50000
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/disco"
	"github.com/disco-sim/disco/internal/noc"
)

func main() {
	var (
		k        = flag.Int("k", 4, "mesh radix (k x k)")
		vcs      = flag.Int("vcs", 2, "virtual channels per port")
		bufDepth = flag.Int("bufdepth", 8, "per-VC buffer depth (flits)")
		useDisco = flag.Bool("disco", false, "enable DISCO in-router compression")
		alg      = flag.String("alg", "delta", "DISCO compression algorithm")
		rate     = flag.Float64("rate", 0.02, "per-node injection probability/cycle")
		dataFrac = flag.Float64("data", 0.5, "fraction of data packets")
		compFrac = flag.Float64("compressible", 0.7, "fraction of compressible payloads")
		pattern  = flag.String("pattern", "uniform", "traffic: uniform|transpose|hotspot|bitcomp")
		hot      = flag.Int("hotnode", 0, "hot node for -pattern hotspot")
		cycles   = flag.Int("cycles", 20000, "warm traffic cycles before draining")
		seed     = flag.Int64("seed", 1, "traffic seed")
		sweep    = flag.Bool("sweep", false, "measure the latency-vs-load curve instead of one point")
	)
	flag.Parse()
	if *sweep {
		if err := runSweep(*k, *vcs, *bufDepth, *useDisco, *alg, *dataFrac, *compFrac,
			*pattern, *hot, *cycles, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "nocsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*k, *vcs, *bufDepth, *useDisco, *alg, *rate, *dataFrac, *compFrac,
		*pattern, *hot, *cycles, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "nocsim:", err)
		os.Exit(1)
	}
}

// runSweep measures a latency-vs-load curve.
func runSweep(k, vcs, bufDepth int, useDisco bool, alg string, dataFrac, compFrac float64,
	pattern string, hot, cycles int, seed int64) error {
	cfg := noc.DefaultSweep()
	cfg.Net.K = k
	cfg.Net.VCs = vcs
	cfg.Net.BufDepth = bufDepth
	if useDisco {
		a, err := compress.New(alg)
		if err != nil {
			return err
		}
		dc := disco.DefaultConfig(a)
		cfg.Net.Disco = &dc
	}
	pat, err := noc.ParsePattern(pattern)
	if err != nil {
		return err
	}
	cfg.Traffic.Pattern = pat
	cfg.Traffic.HotNode = hot
	cfg.Traffic.DataFraction = dataFrac
	cfg.Traffic.CompressibleFraction = compFrac
	cfg.Traffic.Seed = seed
	cfg.WarmCycles = cycles
	pts, err := noc.Sweep(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("latency vs offered load, %dx%d mesh, pattern=%s, disco=%v\n", k, k, pattern, useDisco)
	fmt.Print(noc.FormatSweep(pts))
	return nil
}

func run(k, vcs, bufDepth int, useDisco bool, alg string, rate, dataFrac, compFrac float64,
	pattern string, hot, cycles int, seed int64) error {
	cfg := noc.Config{K: k, VCs: vcs, BufDepth: bufDepth}
	if useDisco {
		a, err := compress.New(alg)
		if err != nil {
			return err
		}
		dc := disco.DefaultConfig(a)
		cfg.Disco = &dc
	}
	net, err := noc.New(cfg)
	if err != nil {
		return err
	}
	pat, err := noc.ParsePattern(pattern)
	if err != nil {
		return err
	}
	tc := noc.TrafficConfig{
		Pattern:              pat,
		InjectionRate:        rate,
		DataFraction:         dataFrac,
		CompressibleFraction: compFrac,
		HotNode:              hot,
		Seed:                 seed,
	}
	gen := noc.NewTrafficGen(net, tc)
	for i := 0; i < cycles; i++ {
		gen.Step()
		net.Step()
	}
	if !net.RunUntilQuiescent(uint64(cycles) * 100) {
		return fmt.Errorf("network failed to drain (deadlock?)")
	}
	s := net.Stats()
	fmt.Printf("mesh %dx%d, %d VCs x %d flits, disco=%v, pattern=%s, rate=%.3f\n",
		k, k, vcs, bufDepth, useDisco, pattern, rate)
	fmt.Printf("packets: injected=%d ejected=%d flit-hops=%d\n", s.Injected, s.Ejected, s.FlitHops)
	fmt.Printf("latency: mean=%.1f max=%.0f (data: %.1f) queueing=%.1f cycles/pkt\n",
		s.PacketLatency.Mean(), s.PacketLatency.Max(), s.DataLatency.Mean(), s.QueueCycles.Mean())
	fmt.Printf("throughput: %.3f packets/node/cycle\n",
		float64(s.Ejected)/float64(net.Cycle)/float64(k*k))
	maxU, meanU := net.LinkUtilization()
	fmt.Printf("link utilization: max=%.1f%% mean=%.1f%%\n", maxU*100, meanU*100)
	respShare := 0.0
	if s.FlitHops > 0 {
		respShare = float64(s.FlitHopsByClass[noc.ClassResponse]) / float64(s.FlitHops)
	}
	fmt.Printf("response-flit share of link bandwidth: %.0f%%\n", respShare*100)
	if useDisco {
		fmt.Printf("disco: compressions=%d decompressions=%d releases=%d failures=%d busy=%d cycles\n",
			s.Compressions, s.Decompressions, s.EngineReleases, s.EngineFailures, s.EngineBusy)
		fmt.Printf("disco: wrong-form ejections=%d (residual NI conversions)\n", s.EjectedWrongForm)
	}
	return nil
}
