package main

import "testing"

func TestRunSinglePoint(t *testing.T) {
	if err := run(4, 2, 8, true, "delta", 0.02, 0.5, 0.7, "uniform", 0, 2000, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(4, 2, 8, true, "bogus", 0.02, 0.5, 0.7, "uniform", 0, 100, 1); err == nil {
		t.Error("unknown algorithm should fail")
	}
	if err := run(4, 2, 8, false, "delta", 0.02, 0.5, 0.7, "spiral", 0, 100, 1); err == nil {
		t.Error("unknown pattern should fail")
	}
	if err := run(1, 2, 8, false, "delta", 0.02, 0.5, 0.7, "uniform", 0, 100, 1); err == nil {
		t.Error("bad mesh radix should fail")
	}
}

func TestRunSweepMode(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	if err := runSweep(4, 2, 8, false, "delta", 0.5, 0.7, "uniform", 0, 1500, 1); err != nil {
		t.Fatal(err)
	}
	if err := runSweep(4, 2, 8, false, "delta", 0.5, 0.7, "wat", 0, 100, 1); err == nil {
		t.Error("bad pattern should fail")
	}
}
