package main

import (
	"testing"

	"github.com/disco-sim/disco/internal/lint"
)

// TestRepoIsClean is the lint regression gate: the full analyzer suite
// over the whole module must report zero findings. A failure here means
// a change reintroduced a determinism or conservation hazard (or needs
// a justified //lint:ignore recorded in CHANGES.md).
func TestRepoIsClean(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded only %d packages; pattern expansion is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, lint.All())
		if err != nil {
			t.Fatalf("Run(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil {
		t.Fatalf("selectAnalyzers(\"\"): %v", err)
	}
	if len(all) != len(lint.All()) {
		t.Errorf("empty flag selected %d analyzers, want all %d", len(all), len(lint.All()))
	}

	subset, err := selectAnalyzers("nodeterminism, statwidth")
	if err != nil {
		t.Fatalf("selectAnalyzers subset: %v", err)
	}
	if len(subset) != 2 || subset[0].Name != "nodeterminism" || subset[1].Name != "statwidth" {
		t.Errorf("subset selection wrong: %v", subset)
	}

	if _, err := selectAnalyzers("nosuchcheck"); err == nil {
		t.Error("unknown analyzer name did not error")
	}
}
