package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/disco-sim/disco/internal/lint"
)

// TestRepoIsClean is the lint regression gate: the full analyzer suite
// over the whole module must report zero findings. A failure here means
// a change reintroduced a determinism or conservation hazard (or needs
// a justified //lint:ignore recorded in CHANGES.md).
func TestRepoIsClean(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded only %d packages; pattern expansion is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, lint.All())
		if err != nil {
			t.Fatalf("Run(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestBaselineMatchesSweep guards the committed baseline file: it must
// equal a fresh full-module sweep, so fixed findings cannot linger as
// stale entries (and new findings cannot hide behind a hand-edited
// baseline). Regenerate with `make lint-baseline` after justified
// changes.
func TestBaselineMatchesSweep(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		pkgDiags, err := lint.Run(pkg, lint.All())
		if err != nil {
			t.Fatalf("Run(%s): %v", pkg.Path, err)
		}
		diags = append(diags, pkgDiags...)
	}
	fresh := lint.NewBaseline(diags, loader.ModuleDir)
	committed, err := lint.LoadBaseline(filepath.Join(loader.ModuleDir, "lint-baseline.json"))
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if !committed.Equal(fresh) {
		t.Errorf("committed lint-baseline.json does not match a fresh sweep (%d committed vs %d fresh classes); regenerate with `make lint-baseline`",
			len(committed.Findings), len(fresh.Findings))
	}
}

// writeTempModule lays out a throwaway single-package module for the
// exit-code tests and chdirs into it.
func writeTempModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"tmp.go": src,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
	return dir
}

const cleanSrc = `package p

func Add(a, b int) int { return a + b }
`

// droppedErrSrc trips errchecksim (the only unscoped analyzer) exactly
// once: f's error result is dropped in a bare statement.
const droppedErrSrc = `package p

import "os"

func f() error {
	_, err := os.Getwd()
	return err
}

func g() { f() }
`

func TestExitCodeClean(t *testing.T) {
	writeTempModule(t, cleanSrc)
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != exitClean {
		t.Errorf("clean module: exit %d, want %d (stderr: %s)", code, exitClean, errb.String())
	}
}

func TestExitCodeFindings(t *testing.T) {
	writeTempModule(t, droppedErrSrc)
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != exitFindings {
		t.Errorf("module with finding: exit %d, want %d", code, exitFindings)
	}
	if !strings.Contains(errb.String(), "errchecksim") {
		t.Errorf("stderr does not name the analyzer: %s", errb.String())
	}
}

func TestExitCodeTypeErrors(t *testing.T) {
	writeTempModule(t, "package p\n\nfunc f() int { return \"x\" }\n")
	var out, errb bytes.Buffer
	if code := run([]string{"-type-errors", "./..."}, &out, &errb); code != exitError {
		t.Errorf("-type-errors on broken module: exit %d, want %d", code, exitError)
	}
	// The contract of satellite 2: positions, not opaque messages.
	if !strings.Contains(errb.String(), "tmp.go:3:") {
		t.Errorf("type error lacks file:line position: %s", errb.String())
	}
}

func TestExitCodeLoadFailure(t *testing.T) {
	writeTempModule(t, cleanSrc)
	var out, errb bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &out, &errb); code != exitError {
		t.Errorf("unloadable pattern: exit %d, want %d", code, exitError)
	}
	if code := run([]string{"-write-baseline", "./..."}, &out, &errb); code != exitError {
		t.Errorf("-write-baseline without -baseline: exit %d, want %d", code, exitError)
	}
}

// TestBaselineWorkflow pins the CI loop: record the known findings with
// -write-baseline, then a rerun against that baseline is clean, and a
// NEW finding still fails.
func TestBaselineWorkflow(t *testing.T) {
	dir := writeTempModule(t, droppedErrSrc)
	base := filepath.Join(dir, "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", base, "-write-baseline", "./..."}, &out, &errb); code != exitClean {
		t.Fatalf("-write-baseline: exit %d (stderr: %s)", code, errb.String())
	}
	if code := run([]string{"-baseline", base, "./..."}, &out, &errb); code != exitClean {
		t.Errorf("baselined rerun: exit %d, want %d (stderr: %s)", code, exitClean, errb.String())
	}
	// A second dropped error is a new finding beyond the baseline.
	src := droppedErrSrc + "\nfunc h() { f() }\n"
	if err := os.WriteFile(filepath.Join(dir, "tmp.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{"-baseline", base, "./..."}, &out, &errb); code != exitFindings {
		t.Errorf("new finding beyond baseline: exit %d, want %d", code, exitFindings)
	}
	if !strings.Contains(errb.String(), "beyond baseline") {
		t.Errorf("stderr does not report the new-findings summary: %s", errb.String())
	}
}

// TestSARIFOutput checks the -sarif artifact: schema-versioned, one
// result per finding, module-relative URI.
func TestSARIFOutput(t *testing.T) {
	dir := writeTempModule(t, droppedErrSrc)
	sarif := filepath.Join(dir, "out.sarif")
	var out, errb bytes.Buffer
	if code := run([]string{"-sarif", sarif, "./..."}, &out, &errb); code != exitFindings {
		t.Fatalf("run: exit %d", code)
	}
	data, err := os.ReadFile(sarif)
	if err != nil {
		t.Fatalf("read sarif: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("parse sarif: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("bad sarif shape: version %q, %d runs", log.Version, len(log.Runs))
	}
	results := log.Runs[0].Results
	if len(results) != 1 || results[0].RuleID != "errchecksim" {
		t.Fatalf("sarif results = %+v, want one errchecksim result", results)
	}
	if uri := results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "tmp.go" {
		t.Errorf("artifact URI = %q, want module-relative %q", uri, "tmp.go")
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil {
		t.Fatalf("selectAnalyzers(\"\"): %v", err)
	}
	if len(all) != len(lint.All()) {
		t.Errorf("empty flag selected %d analyzers, want all %d", len(all), len(lint.All()))
	}

	subset, err := selectAnalyzers("nodeterminism, statwidth")
	if err != nil {
		t.Fatalf("selectAnalyzers subset: %v", err)
	}
	if len(subset) != 2 || subset[0].Name != "nodeterminism" || subset[1].Name != "statwidth" {
		t.Errorf("subset selection wrong: %v", subset)
	}

	if _, err := selectAnalyzers("nosuchcheck"); err == nil {
		t.Error("unknown analyzer name did not error")
	}
}
