// Command discolint runs the repo's custom static-analysis suite (see
// internal/lint) over the module:
//
//	go run ./cmd/discolint ./...          # whole repo (CI invocation)
//	go run ./cmd/discolint ./internal/noc # one package
//	go run ./cmd/discolint -list          # analyzer inventory
//
// Exit status is 1 when any finding is reported, 2 on usage or load
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/disco-sim/disco/internal/lint"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list analyzers and exit")
		only   = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
		strict = flag.Bool("type-errors", false, "also fail on type-check errors in analyzed packages")
	)
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "discolint:", err)
		os.Exit(2)
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "discolint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "discolint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "discolint:", err)
		os.Exit(2)
	}
	findings := 0
	for _, pkg := range pkgs {
		if *strict {
			for _, terr := range pkg.TypeErrors {
				findings++
				fmt.Fprintf(os.Stderr, "%v (type error)\n", terr)
			}
		}
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "discolint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			findings++
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "discolint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -analyzers flag.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
