// Command discolint runs the repo's custom static-analysis suite (see
// internal/lint) over the module:
//
//	go run ./cmd/discolint ./...                        # whole repo
//	go run ./cmd/discolint -baseline lint-baseline.json ./...  # CI gate
//	go run ./cmd/discolint -sarif out.sarif ./...       # SARIF artifact
//	go run ./cmd/discolint ./internal/noc               # one package
//	go run ./cmd/discolint -list                        # inventory
//
// Exit status: 0 clean, 1 when any (non-baselined) finding is reported,
// 2 on usage, load, or type-check failures — so CI can tell "the code
// has findings" from "the tool could not analyze the code".
package main

import (
	"flag"
	"fmt"
	"go/types"
	"io"
	"os"
	"strings"

	"github.com/disco-sim/disco/internal/lint"
)

// Exit codes.
const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injected streams and an exit code, so the exit-code
// contract is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("discolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list          = fs.Bool("list", false, "list analyzers and exit")
		only          = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
		strict        = fs.Bool("type-errors", false, "also fail (exit 2) on type-check errors in analyzed packages")
		sarifPath     = fs.String("sarif", "", "write findings as SARIF 2.1.0 to this file")
		baselinePath  = fs.String("baseline", "", "suppress findings recorded in this baseline file; fail only on new ones")
		writeBaseline = fs.Bool("write-baseline", false, "regenerate the -baseline file from this run's findings instead of failing")
	)
	if err := fs.Parse(args); err != nil {
		return exitError
	}
	if *list {
		for _, a := range lint.All() {
			fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if *writeBaseline && *baselinePath == "" {
		fprintln(stderr, "discolint: -write-baseline requires -baseline")
		return exitError
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fprintln(stderr, "discolint:", err)
		return exitError
	}
	cwd, err := os.Getwd()
	if err != nil {
		fprintln(stderr, "discolint:", err)
		return exitError
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fprintln(stderr, "discolint:", err)
		return exitError
	}
	pkgs, err := loader.LoadPatterns(fs.Args())
	if err != nil {
		fprintln(stderr, "discolint:", err)
		return exitError
	}

	var diags []lint.Diagnostic
	typeErrors := 0
	for _, pkg := range pkgs {
		if *strict {
			for _, terr := range pkg.TypeErrors {
				typeErrors++
				fprintf(stderr, "%s (type error)\n", formatTypeError(terr, pkg))
			}
		}
		pkgDiags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fprintln(stderr, "discolint:", err)
			return exitError
		}
		diags = append(diags, pkgDiags...)
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fprintln(stderr, "discolint:", err)
			return exitError
		}
		werr := lint.WriteSARIF(f, analyzers, diags, loader.ModuleDir)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fprintln(stderr, "discolint: write sarif:", werr)
			return exitError
		}
	}

	if *writeBaseline {
		base := lint.NewBaseline(diags, loader.ModuleDir)
		if err := base.WriteFile(*baselinePath); err != nil {
			fprintln(stderr, "discolint: write baseline:", err)
			return exitError
		}
		fprintf(stderr, "discolint: wrote %d finding class(es) to %s\n", len(base.Findings), *baselinePath)
		return exitClean
	}

	report := diags
	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fprintln(stderr, "discolint:", err)
			return exitError
		}
		report = base.FilterNew(diags, loader.ModuleDir)
	}
	for _, d := range report {
		fprintln(stderr, d)
	}

	switch {
	case typeErrors > 0:
		fprintf(stderr, "discolint: %d type error(s)\n", typeErrors)
		return exitError
	case len(report) > 0:
		if *baselinePath != "" {
			fprintf(stderr, "discolint: %d new finding(s) beyond baseline\n", len(report))
		} else {
			fprintf(stderr, "discolint: %d finding(s)\n", len(report))
		}
		return exitFindings
	}
	return exitClean
}

// fprintf and fprintln write console output to the injected streams;
// the write error is discarded explicitly — diagnostics are best-effort
// (this is the errchecksim-sanctioned form of console logging to a
// non-literal writer).
func fprintf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func fprintln(w io.Writer, args ...any) {
	_, _ = fmt.Fprintln(w, args...)
}

// formatTypeError renders a type-check error with its file:line:col
// position; errors without position info fall back to the package path
// so the output is never just an opaque message.
func formatTypeError(err error, pkg *lint.Package) string {
	if te, ok := err.(types.Error); ok && te.Fset != nil {
		return fmt.Sprintf("%s: %s", te.Fset.Position(te.Pos), te.Msg)
	}
	return fmt.Sprintf("%s: %v", pkg.Path, err)
}

// selectAnalyzers resolves the -analyzers flag.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
