// Command discod serves the DISCO codec suite as a streaming network
// service (ROADMAP item 1): clients negotiate a registry codec in a
// versioned handshake, then exchange 64-byte blocks compressed against
// per-stream persistent state; discod echoes every decoded block back
// through the return direction's compressor, so a round trip proves
// the full encode→wire→decode path on both ends.
//
// Exit codes (tested in main_test.go):
//
//	0 — clean shutdown: SIGTERM/SIGINT received, every stream drained
//	1 — internal error (listener failure, serve-loop error)
//	2 — configuration error (bad flags, unknown codec)
//	3 — forced shutdown: streams still live when the drain timeout
//	    expired and were force-closed
package main

import (
	"context"
	"errors"
	"flag"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/obs"
	"github.com/disco-sim/disco/internal/stream"
)

// The documented exit-code contract.
const (
	ExitOK     = 0
	ExitError  = 1
	ExitConfig = 2
	ExitForced = 3
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

// statusDoc is the /status document: the stream server's counters plus
// the process-health fields the soak harness asserts on.
type statusDoc struct {
	stream.Status
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	Goroutines     int    `json:"goroutines"`
}

func realMain(args []string) int {
	fs := flag.NewFlagSet("discod", flag.ContinueOnError)
	var (
		listenAddr = fs.String("listen", "127.0.0.1:7060", "stream listen address (host:port, :0 picks a port)")
		httpAddr   = fs.String("http", "", "observability HTTP address serving /metrics, /status, /debug/pprof (empty = off)")
		codecs     = fs.String("codecs", "", "comma-separated codec allowlist (empty = full registry: "+strings.Join(compress.Names(), ",")+")")
		maxConns   = fs.Int("max-conns", stream.DefaultMaxConns, "concurrent stream bound (accept-loop backpressure)")
		drain      = fs.Duration("drain", 15*time.Second, "graceful-drain timeout on SIGTERM/SIGINT before live streams are force-closed")
		hsTimeout  = fs.Duration("handshake-timeout", 10*time.Second, "per-connection handshake deadline")
		portFile   = fs.String("port-file", "", "write the bound stream address (and HTTP address on a second line) to this file once listening")
	)
	if err := fs.Parse(args); err != nil {
		return ExitConfig
	}
	rep := obs.NewReporter(os.Stderr, "discod")

	var opts stream.Options
	opts.MaxConns = *maxConns
	opts.HandshakeTimeout = *hsTimeout
	opts.Rep = rep
	if *codecs != "" {
		opts.Codecs = strings.Split(*codecs, ",")
	}
	srv, err := stream.NewServer(opts)
	if err != nil {
		rep.Infof("config: %v", err)
		return ExitConfig
	}

	ln, err := net.Listen("tcp", *listenAddr)
	if err != nil {
		rep.Infof("listen %s: %v", *listenAddr, err)
		return ExitError
	}
	rep.Infof("serving streams on %s (codecs: %s, max-conns %d)",
		ln.Addr(), codecList(opts.Codecs), *maxConns)

	httpBound := ""
	if *httpAddr != "" {
		obsSrv := obs.NewServer()
		obsSrv.SetLiveMetrics(srv.M.RenderPrometheus)
		obsSrv.SetLiveStatus(func() any {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return statusDoc{
				Status:         srv.Status(),
				HeapAllocBytes: ms.HeapAlloc,
				Goroutines:     runtime.NumGoroutine(),
			}
		})
		httpBound, err = obsSrv.Start(*httpAddr)
		if err != nil {
			rep.Infof("http: %v", err)
			_ = ln.Close()
			return ExitError
		}
		defer func() { _ = obsSrv.Close() }()
		rep.Infof("observability endpoint on http://%s (/metrics /status /debug/pprof)", httpBound)
	}

	if *portFile != "" {
		// Written atomically (tmp + rename) so a polling script never
		// reads a half-written address.
		tmp := *portFile + ".tmp"
		body := ln.Addr().String() + "\n"
		if httpBound != "" {
			body += httpBound + "\n"
		}
		if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
			rep.Infof("port-file: %v", err)
			_ = ln.Close()
			return ExitError
		}
		if err := os.Rename(tmp, *portFile); err != nil {
			rep.Infof("port-file: %v", err)
			_ = ln.Close()
			return ExitError
		}
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-serveErr:
		if err != nil {
			rep.Infof("serve: %v", err)
			return ExitError
		}
		return ExitOK
	case sig := <-sigc:
		rep.Infof("%s: draining %d live stream(s) (timeout %s; signal again to exit immediately)",
			sig, srv.ActiveConns(), *drain)
	}

	// Second signal during the drain forces an immediate exit.
	go func() {
		<-sigc
		rep.Infof("second signal: exiting immediately")
		os.Exit(ExitForced)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = srv.Shutdown(ctx)
	<-serveErr // accept loop has returned (nil, it saw the drain)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			rep.Infof("drain timeout: force-closed remaining streams")
			return ExitForced
		}
		rep.Infof("shutdown: %v", err)
		return ExitError
	}
	st := srv.Status()
	rep.Infof("drained clean: %d streams served, %d blocks in, %d blocks out",
		st.Accepted, st.BlocksIn, st.BlocksOut)
	return ExitOK
}

func codecList(names []string) string {
	if len(names) == 0 {
		return strings.Join(compress.Names(), ",")
	}
	return strings.Join(names, ",")
}
