package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/disco-sim/disco/internal/trace"
)

func TestTracegenWritesReadableTraces(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "t")
	if err := run("vips", 200, 2, 1, prefix); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(prefix + ".core01.trace")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	accs, err := trace.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 200 {
		t.Errorf("accesses = %d, want 200", len(accs))
	}
}

func TestTracegenRejectsUnknownBenchmark(t *testing.T) {
	if err := run("nope", 10, 1, 1, filepath.Join(t.TempDir(), "x")); err == nil {
		t.Error("unknown benchmark should fail")
	}
}
