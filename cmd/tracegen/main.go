// Command tracegen snapshots the synthetic workload generators into
// portable trace files (one per core) in the format internal/trace
// defines, so runs can be replayed, shared or hand-edited:
//
//	tracegen -benchmark canneal -ops 20000 -cores 16 -out /tmp/canneal
//
// writes /tmp/canneal.core00.trace ... and the replays drive cmp via
// Config.Streams.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/disco-sim/disco/internal/trace"
)

func main() {
	var (
		bench = flag.String("benchmark", "bodytrack", "profile to snapshot")
		ops   = flag.Int("ops", 20000, "accesses per core")
		cores = flag.Int("cores", 16, "number of cores")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("out", "trace", "output path prefix")
	)
	flag.Parse()
	if err := run(*bench, *ops, *cores, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(bench string, ops, cores int, seed int64, out string) error {
	prof, ok := trace.ByName(bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", bench)
	}
	for core := 0; core < cores; core++ {
		g := trace.NewGenerator(&prof, core, seed)
		if err := g.Err(); err != nil {
			return err
		}
		accs := trace.Record(g, ops)
		path := fmt.Sprintf("%s.core%02d.trace", out, core)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := trace.WriteTrace(f, accs); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d accesses)\n", path, len(accs))
	}
	return nil
}
