// Command discosim runs the full-system DISCO experiments and regenerates
// the paper's tables and figures (see DESIGN.md for the experiment index).
//
// Usage:
//
//	discosim -exp fig5                # Figure 5 at full fidelity
//	discosim -exp all -quick          # everything, reduced settings
//	discosim -exp fig7 -benchmarks canneal,streamcluster -ops 8000
//	discosim -exp all -cache-dir .disco-cache        # crash-safe campaign
//	discosim -exp all -cache-dir .disco-cache -resume
//	discosim -run disco -benchmark canneal -alg sc2   # one raw run
//	discosim -run disco -benchmark canneal -profile -http :6060
//	discosim -run disco -scaling 1,2,4,8 -scaling-csv scaling.csv
//
// Exit codes (see README "Resumable campaigns"):
//
//	0  success
//	1  internal error (I/O, unexpected failure)
//	2  configuration error (bad flags, unknown mode/benchmark/experiment)
//	3  progress-watchdog stall
//	4  a cell failed terminally after exhausting its retries
//	5  interrupted (SIGINT/SIGTERM) after a graceful drain — resumable
//	   with the same -cache-dir plus -resume
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/experiments"
	"github.com/disco-sim/disco/internal/fault"
	"github.com/disco-sim/disco/internal/metrics"
	"github.com/disco-sim/disco/internal/noc"
	"github.com/disco-sim/disco/internal/obs"
	"github.com/disco-sim/disco/internal/simrun"
	"github.com/disco-sim/disco/internal/store"
	"github.com/disco-sim/disco/internal/trace"
)

// The documented exit-code contract (tested in main_test.go).
const (
	ExitOK          = 0 // everything ran and every artifact was written
	ExitError       = 1 // internal error: I/O failure, unexpected error
	ExitConfig      = 2 // configuration error: bad flags, unknown names
	ExitStall       = 3 // the progress watchdog declared a stall
	ExitCellFailed  = 4 // a cell failed terminally after its retries
	ExitInterrupted = 5 // graceful drain completed; campaign is resumable
)

// configError marks operator-input mistakes so they exit with
// ExitConfig instead of ExitError.
type configError struct{ err error }

func (e *configError) Error() string { return e.err.Error() }
func (e *configError) Unwrap() error { return e.err }

// exitCode classifies err per the documented contract. Order matters:
// an interrupted campaign wraps ErrInterrupted even when cancellation
// text mentions other cells, and a stalled cell reaches the runner as
// a *CellError wrapping the *StallError — the stall is the diagnosis.
func exitCode(err error) int {
	if err == nil {
		return ExitOK
	}
	if errors.Is(err, simrun.ErrInterrupted) {
		return ExitInterrupted
	}
	var se *cmp.StallError
	if errors.As(err, &se) {
		return ExitStall
	}
	var ce *simrun.CellError
	if errors.As(err, &ce) {
		return ExitCellFailed
	}
	var cfg *configError
	if errors.As(err, &cfg) {
		return ExitConfig
	}
	return ExitError
}

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		exp     = flag.String("exp", "", "experiment: table1|fig5|fig6|fig7|fig8|area|ablation|calibrate|motivation|sensitivity|composition|all")
		jsonOut = flag.String("json", "", "write all experiment results as JSON to this file (runs everything)")
		csvOut  = flag.String("csv", "", "write raw per-run rows (benchmark x mode) as CSV to this file")
		quick   = flag.Bool("quick", false, "reduced settings (fewer ops, 4 benchmarks)")
		ops     = flag.Int("ops", 0, "measured memory ops per core (0 = preset)")
		warmup  = flag.Int("warmup", 0, "warmup ops per core (0 = preset)")
		seed    = flag.Int64("seed", 1, "workload seed")
		benchs  = flag.String("benchmarks", "", "comma-separated benchmark subset")

		runMode = flag.String("run", "", "single run mode: baseline|ideal|cc|cnc|disco")
		bench   = flag.String("benchmark", "bodytrack", "benchmark for -run")
		alg     = flag.String("alg", "delta", "compression algorithm for -run")
		k       = flag.Int("k", 4, "mesh radix for -run")

		metricsOut   = flag.String("metrics", "", "with -run: write the metrics-registry JSON export to this file")
		metricsEvery = flag.Uint64("metrics-every", 0, "time-series sampling interval in cycles (0 = default)")
		traceBin     = flag.String("trace-bin", "", "with -run: write a binary event trace (analyze with discotrace)")
		faultSpec    = flag.String("fault-spec", "", `with -run: arm fault injection, e.g. "engine=0.01,stuck=32,payload=0.001,credit=0.001" (see internal/fault)`)
		faultSeed    = flag.Int64("fault-seed", 1, "with -run: fault-injection PRNG seed")

		cacheDir = flag.String("cache-dir", "", "persist campaign results in this directory (crash-safe content-addressed store; reruns replay finished cells)")
		resume   = flag.Bool("resume", false, "with -cache-dir: report the previous campaign's manifest before replaying finished cells")
		retries  = flag.Int("retries", 2, "with -cache-dir: transient-failure retries per cell before recording a terminal failure")

		jobs       = flag.Int("j", 0, "parallel simulation workers (0 = all cores); results are byte-identical at any setting")
		simWorkers = flag.Int("sim-workers", 1, "with -run: shard the NoC cycle engine across this many workers within the one simulation; results are byte-identical at any setting")
		noCache    = flag.Bool("no-cache", false, "disable the cross-figure run memo cache")

		profile    = flag.Bool("profile", false, "with -run: print a per-phase wall-clock profile to stderr after the run (purely observational; artifacts stay byte-identical)")
		httpAddr   = flag.String("http", "", "serve /metrics, /status and /debug/pprof on this address while the run or campaign executes (e.g. :6060)")
		httpEvery  = flag.Uint64("http-every", 0, "with -run -http: publish /status and /metrics snapshots every N cycles (0 = default)")
		scaling    = flag.String("scaling", "", "with -run: comma-separated -sim-workers counts to sweep, emitting a scaling-curve CSV")
		scalingCSV = flag.String("scaling-csv", "", "with -scaling: write the curve CSV to this file (default stdout)")
	)
	flag.Parse()

	// All operator-facing stderr chatter goes through one structured
	// reporter; stdout stays reserved for artifacts so redirected output
	// is byte-identical with or without observability armed.
	rep := obs.NewReporter(os.Stderr, "discosim")

	if *runMode != "" {
		o := observeOpts{metricsOut: *metricsOut, metricsEvery: *metricsEvery, traceBin: *traceBin,
			faultSpec: *faultSpec, faultSeed: *faultSeed, simWorkers: *simWorkers,
			profile: *profile, httpAddr: *httpAddr, httpEvery: *httpEvery, rep: rep}
		var err error
		if *scaling != "" {
			err = scalingRun(*runMode, *bench, *alg, *k, *ops, *warmup, *seed, o, *scaling, *scalingCSV)
		} else {
			err = singleRun(*runMode, *bench, *alg, *k, *ops, *warmup, *seed, o)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "discosim:", err)
			return exitCode(err)
		}
		return ExitOK
	}
	if *exp == "" && *jsonOut == "" && *csvOut == "" {
		flag.Usage()
		return ExitConfig
	}
	if *resume && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "discosim: -resume requires -cache-dir")
		return ExitConfig
	}
	o := experiments.Default()
	if *quick {
		o = experiments.Quick()
	}
	if *ops > 0 {
		o.Ops = *ops
	}
	if *warmup > 0 {
		o.Warmup = *warmup
	}
	o.Seed = *seed
	if *benchs != "" {
		o.Benchmarks = strings.Split(*benchs, ",")
	}
	for _, b := range o.Benchmarks {
		if _, ok := trace.ByName(b); !ok {
			fmt.Fprintf(os.Stderr, "discosim: unknown benchmark %q (have %s)\n",
				b, strings.Join(trace.Names(), ","))
			return ExitConfig
		}
	}
	// One scheduler for the whole invocation: experiments submit their
	// cells to it, and the memo cache dedupes shared baselines across
	// figures. Artifacts go to stdout/files; the summary goes to stderr
	// so redirected output stays byte-identical.
	o.Runner = simrun.New(*jobs, !*noCache)
	// Campaign persistence (DESIGN.md §13): the store becomes the second
	// cache tier behind the memo map, every distinct cell's outcome is
	// recorded in the manifest, and SIGINT/SIGTERM triggers a graceful
	// drain so in-flight results still reach disk before exit.
	var (
		st *store.Store
		mf *store.Manifest
	)
	if *cacheDir != "" {
		var err error
		st, err = store.Open(*cacheDir, store.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "discosim:", err)
			return ExitError
		}
		if *resume && st.HasManifest() {
			if prev, err := st.LoadManifest(); err != nil {
				rep.Warnf("previous manifest unreadable (%v); replaying from store entries alone", err)
			} else {
				done, failed, canceled := prev.Counts()
				rep.Infof("resume: previous campaign recorded %d cells (%d done, %d failed, %d canceled); finished cells replay from %s",
					prev.Len(), done, failed, canceled, st.Dir())
			}
		}
		mf = store.NewManifest(st.Version())
		o.Runner.SetStore(st)
		retry := simrun.DefaultRetry()
		retry.MaxAttempts = *retries + 1
		o.Runner.SetRetry(retry)
		o.Runner.SetObserver(func(out simrun.Outcome) {
			rec := store.CellRecord{Key: out.Key.String(),
				Entry: st.EntryName(out.Key.Canonical()), Attempts: out.Attempts}
			switch {
			case out.Err == nil:
				rec.Status = store.StatusDone
				rec.Source = store.SourceSimulated
				if out.FromDisk {
					rec.Source = store.SourceDisk
				}
			case out.Attempts > 0:
				rec.Status = store.StatusFailed
				rec.Error = out.Err.Error()
			default:
				rec.Status = store.StatusCanceled
				rec.Error = out.Err.Error()
			}
			mf.Record(rec)
		})
		sigc := make(chan os.Signal, 2)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigc)
		go func() {
			<-sigc
			rep.Infof("interrupt: draining in-flight cells (interrupt again to exit immediately)")
			o.Runner.Interrupt()
			<-sigc
			os.Exit(ExitInterrupted)
		}()
	}
	if *httpAddr != "" {
		srv, err := startCampaignServer(*httpAddr, o.Runner, rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "discosim:", err)
			return ExitError
		}
		defer srv.Close()
	}
	var runErr error
	switch {
	case *csvOut != "":
		runErr = writeCSVCampaign(o, *alg, *csvOut)
	case *jsonOut != "":
		runErr = writeJSONCampaign(o, *jsonOut)
	default:
		runErr = runExperiments(*exp, o)
	}
	code := exitCode(runErr)
	if st != nil {
		// Wait for drained/canceled cells to settle so the manifest and
		// store see every outcome, then flush the ledger.
		o.Runner.Quiesce()
		if merr := st.SaveManifest(mf); merr != nil {
			// Results durability lives in the entries; a manifest write
			// failure degrades reporting, not resumability.
			rep.Warnf("manifest not saved: %v", merr)
		}
	}
	ss := o.Runner.Stats()
	if ss.Submitted > 0 {
		rep.Infof("simrun: %d cells (%d simulated, %d cache hits, %d disk hits), j=%d",
			ss.Submitted, ss.Executed, ss.Hits, ss.DiskHits, o.Runner.Workers())
		if st != nil && (ss.Retries > 0 || ss.Quarantined > 0) {
			rep.Infof("store: %d retries, %d quarantined entries", ss.Retries, ss.Quarantined)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "discosim:", runErr)
	}
	if code == ExitInterrupted {
		rep.Infof("interrupted: campaign is resumable — rerun with -cache-dir %s -resume", *cacheDir)
	}
	return code
}

// writeCSVCampaign runs the raw benchmark x mode batch and writes it as
// CSV to path.
func writeCSVCampaign(o experiments.Opts, alg, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.BatchCSV(o, alg, f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeJSONCampaign runs every experiment and writes the combined
// report as JSON to path.
func writeJSONCampaign(o experiments.Opts, path string) error {
	r, err := experiments.RunAll(o)
	if err != nil {
		return err
	}
	data, err := r.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runExperiments dispatches one or all experiments.
func runExperiments(exp string, o experiments.Opts) error {
	want := func(name string) bool { return exp == name || exp == "all" }
	any := false
	if want("table1") {
		any = true
		r, err := experiments.Table1(o)
		if err != nil {
			return err
		}
		fmt.Println("== Table 1: compression scheme parameters ==")
		fmt.Println(r.Table())
	}
	if want("fig5") {
		any = true
		r, err := experiments.Fig5(o)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 5: latency, delta compression ==")
		fmt.Println(r.Table())
		fmt.Println(r.Chart())
		fmt.Printf("DISCO gain: %.1f%% over CC, %.1f%% over CNC\n\n",
			r.DiscoGainOverCC(), r.DiscoGainOverCNC())
	}
	if want("fig6") {
		any = true
		rs, err := experiments.Fig6(o)
		if err != nil {
			return err
		}
		for _, a := range []string{"fpc", "sc2"} {
			r := rs[a]
			fmt.Printf("== Figure 6: latency, %s ==\n", a)
			fmt.Println(r.Table())
			fmt.Printf("DISCO gain: %.1f%% over CC, %.1f%% over CNC\n\n",
				r.DiscoGainOverCC(), r.DiscoGainOverCNC())
		}
	}
	if want("fig7") {
		any = true
		r, err := experiments.Fig7(o)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 7: energy ==")
		fmt.Println(r.Table())
	}
	if want("fig8") {
		any = true
		r, err := experiments.Fig8(o)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 8: scalability ==")
		fmt.Println(r.Table())
		fmt.Println(r.Chart())
	}
	if want("area") {
		any = true
		fmt.Println("== Section 4.3: area overhead ==")
		fmt.Println(experiments.AreaTable())
	}
	if want("ablation") {
		any = true
		r, err := experiments.Ablation(o)
		if err != nil {
			return err
		}
		fmt.Println("== DISCO policy ablation ==")
		fmt.Println(r.Table())
	}
	if exp == "composition" { // analysis aid, not part of "all"
		any = true
		r, err := experiments.Composition(o)
		if err != nil {
			return err
		}
		fmt.Println("== on-chip energy composition ==")
		fmt.Println(r.Table())
	}
	if exp == "sensitivity" { // analysis aid, not part of "all"
		any = true
		r, err := experiments.Sensitivity(o)
		if err != nil {
			return err
		}
		fmt.Println("== NoC sensitivity (VC depth / flow control) ==")
		fmt.Println(r.Table())
	}
	if exp == "motivation" { // analysis aid, not part of "all"
		any = true
		r, err := experiments.Motivation(o)
		if err != nil {
			return err
		}
		fmt.Println("== DISCO motivation statistics ==")
		fmt.Println(r.Table())
	}
	if exp == "calibrate" { // not part of "all": it is a tuning aid
		any = true
		r, err := experiments.CalibrateThresholds(o, nil, nil)
		if err != nil {
			return err
		}
		fmt.Println("== threshold calibration (Section 3.2 training) ==")
		fmt.Println(r.Table())
	}
	if !any {
		return &configError{fmt.Errorf("unknown experiment %q", exp)}
	}
	return nil
}

// observeOpts are the -run observability attachments and engine knobs.
type observeOpts struct {
	metricsOut   string
	metricsEvery uint64
	traceBin     string
	faultSpec    string
	faultSeed    int64
	simWorkers   int
	profile      bool
	httpAddr     string
	httpEvery    uint64
	rep          *obs.Reporter     // structured stderr reporter (nil = fresh default)
	httpReady    func(addr string) // test hook: called once the endpoint is listening
}

// reporter returns the configured stderr reporter, defaulting to one on
// os.Stderr so library-style callers (tests) can pass observeOpts{}.
func (o observeOpts) reporter() *obs.Reporter {
	if o.rep != nil {
		return o.rep
	}
	return obs.NewReporter(os.Stderr, "discosim")
}

// buildConfig resolves the CLI names (mode, benchmark, algorithm) into
// a full-system configuration.
func buildConfig(mode, bench, alg string, k, ops, warmup int, seed int64, o observeOpts) (cmp.Config, error) {
	prof, ok := trace.ByName(bench)
	if !ok {
		return cmp.Config{}, &configError{fmt.Errorf("unknown benchmark %q (have %s)", bench, strings.Join(trace.Names(), ","))}
	}
	var m cmp.Mode
	switch mode {
	case "baseline":
		m = cmp.Baseline
	case "ideal":
		m = cmp.Ideal
	case "cc":
		m = cmp.CC
	case "cnc":
		m = cmp.CNC
	case "disco":
		m = cmp.DISCO
	default:
		return cmp.Config{}, &configError{fmt.Errorf("unknown mode %q", mode)}
	}
	var a compress.Algorithm
	if m != cmp.Baseline {
		var err error
		a, err = compress.New(alg)
		if err != nil {
			return cmp.Config{}, &configError{err}
		}
	}
	cfg := cmp.DefaultConfig(m, a, prof)
	cfg.K = k
	cfg.Seed = seed
	if ops > 0 {
		cfg.OpsPerCore = ops
	}
	if warmup > 0 {
		cfg.WarmupOps = warmup
	}
	if o.faultSpec != "" {
		spec, err := fault.ParseSpec(o.faultSpec)
		if err != nil {
			return cmp.Config{}, &configError{err}
		}
		spec.Seed = o.faultSeed
		cfg.Fault = &spec
	}
	cfg.SimWorkers = o.simWorkers
	return cfg, nil
}

// runStatus is the /status JSON document for one -run simulation. It is
// published at commit boundaries by the probe, so request goroutines
// only ever see an immutable, consistent snapshot.
type runStatus struct {
	Mode      string        `json:"mode"`
	Benchmark string        `json:"benchmark"`
	Cycle     uint64        `json:"cycle"`
	Done      bool          `json:"done"`
	Snapshot  *noc.Snapshot `json:"snapshot,omitempty"`
}

// singleRun executes one raw simulation and prints its result line.
func singleRun(mode, bench, alg string, k, ops, warmup int, seed int64, o observeOpts) error {
	rep := o.reporter()
	cfg, err := buildConfig(mode, bench, alg, k, ops, warmup, seed, o)
	if err != nil {
		return err
	}
	sys, err := cmp.New(cfg)
	if err != nil {
		return &configError{err}
	}
	defer sys.Close()
	var reg *metrics.Registry
	if o.metricsOut != "" {
		reg = metrics.NewRegistry()
		sys.AttachMetrics(reg, o.metricsEvery)
	}
	var pp *obs.PhaseProfiler
	if o.profile || o.httpAddr != "" {
		pp = obs.NewPhaseProfiler(cfg.SimWorkers)
		sys.AttachProfiler(pp)
	}
	if o.httpAddr != "" {
		// /metrics renders the profiler registry live (it reads only
		// atomics) and appends the boundary-published simulation export;
		// /status serves the probe-published runStatus document.
		srv := obs.NewServer()
		obsReg := metrics.NewRegistry()
		pp.AttachMetrics(obsReg)
		srv.SetLiveMetrics(func() []byte {
			var b bytes.Buffer
			if err := obsReg.WritePrometheus(&b, obs.Namespace); err != nil {
				return nil
			}
			return b.Bytes()
		})
		publish := func(done bool) {
			_ = srv.PublishStatus(runStatus{Mode: mode, Benchmark: bench,
				Cycle: sys.NowCycle(), Done: done, Snapshot: sys.Network().Snapshot()})
			if reg != nil {
				_ = srv.PublishMetricsExport(reg.Snapshot())
			}
		}
		sys.SetProbe(o.httpEvery, func() { publish(false) })
		publish(false)
		defer func() { publish(true); _ = srv.Close() }()
		addr, err := srv.Start(o.httpAddr)
		if err != nil {
			return err
		}
		rep.Infof("observability endpoint on http://%s (/metrics /status /debug/pprof)", addr)
		if o.httpReady != nil {
			o.httpReady(addr)
		}
	}
	var bt *noc.BinaryTracer
	if o.traceBin != "" {
		f, err := os.Create(o.traceBin)
		if err != nil {
			return err
		}
		ncfg := sys.Network().Config()
		bt = noc.NewBinaryTracer(f, ncfg.Nodes())
		sys.Network().SetTracer(bt)
	}
	r, err := sys.Run()
	if bt != nil {
		if cerr := bt.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		// A stall carries a structured snapshot of everything in flight —
		// print it rather than just the headline.
		var se *cmp.StallError
		if errors.As(err, &se) && se.Snapshot != nil {
			rep.Block("stall snapshot", se.Snapshot.String())
		}
		return err
	}
	if pp != nil && o.profile {
		rep.Block("phase profile", pp.Report().String())
	}
	if reg != nil {
		f, err := os.Create(o.metricsOut)
		if err != nil {
			return err
		}
		if err := reg.WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.metricsOut)
	}
	if bt != nil {
		fmt.Printf("wrote %s (%d records)\n", o.traceBin, bt.Count)
	}
	fmt.Println(r.Detailed())
	return nil
}

// scalingRun sweeps -sim-workers over the given counts, re-running the
// same simulation once per count with a profiler attached, and emits
// the scaling curve as CSV (one row per count; columns per
// obs.ScalingHeader). Every sweep point produces byte-identical
// simulation results — only the wall-clock columns vary.
func scalingRun(mode, bench, alg string, k, ops, warmup int, seed int64, o observeOpts, spec, csvPath string) error {
	rep := o.reporter()
	var counts []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return &configError{fmt.Errorf("bad -scaling worker count %q", f)}
		}
		counts = append(counts, n)
	}
	reports := make([]obs.Report, 0, len(counts))
	for _, wkr := range counts {
		cfg, err := buildConfig(mode, bench, alg, k, ops, warmup, seed, o)
		if err != nil {
			return err
		}
		cfg.SimWorkers = wkr
		sys, err := cmp.New(cfg)
		if err != nil {
			return &configError{err}
		}
		pp := obs.NewPhaseProfiler(wkr)
		sys.AttachProfiler(pp)
		_, err = sys.Run()
		sys.Close()
		if err != nil {
			return fmt.Errorf("workers=%d: %w", wkr, err)
		}
		r := pp.Report()
		rep.Infof("workers=%d: %d cycles in %.3fs (%.0f cycles/s)",
			wkr, r.Steps, float64(r.ElapsedNS)/1e9, r.CyclesPerSec())
		reports = append(reports, r)
	}
	out := io.Writer(os.Stdout)
	var f *os.File
	if csvPath != "" {
		var err error
		f, err = os.Create(csvPath)
		if err != nil {
			return err
		}
		out = f
	}
	if err := obs.WriteScalingCSV(out, counts, reports); err != nil {
		if f != nil {
			_ = f.Close()
		}
		return err
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	return nil
}

// campaignStatus is the /status JSON document for an experiment
// campaign: the runner's live cell counters (Done is the number a
// progress watcher polls).
type campaignStatus struct {
	Submitted   uint64 `json:"cells_submitted"`
	Executed    uint64 `json:"cells_executed"`
	Hits        uint64 `json:"cells_cache_hits"`
	DiskHits    uint64 `json:"cells_disk_hits"`
	Retries     uint64 `json:"retries"`
	Quarantined uint64 `json:"quarantined"`
	Done        uint64 `json:"cells_done"`
	Workers     int    `json:"workers"`
}

// startCampaignServer serves live campaign progress while experiments
// run. Both endpoints read simrun.Runner.Stats(), which is
// mutex-guarded, so the live closures are safe to call from request
// goroutines at any moment.
func startCampaignServer(addr string, r *simrun.Runner, rep *obs.Reporter) (*obs.Server, error) {
	srv := obs.NewServer()
	srv.SetLiveStatus(func() any {
		st := r.Stats()
		return campaignStatus{Submitted: st.Submitted, Executed: st.Executed,
			Hits: st.Hits, DiskHits: st.DiskHits, Retries: st.Retries,
			Quarantined: st.Quarantined, Done: st.Done, Workers: r.Workers()}
	})
	srv.SetLiveMetrics(func() []byte {
		st := r.Stats()
		reg := metrics.NewRegistry()
		sc := reg.Scope("simrun")
		sc.Counter("cells_submitted").Add(st.Submitted)
		sc.Counter("cells_executed").Add(st.Executed)
		sc.Counter("cells_cache_hits").Add(st.Hits)
		sc.Counter("disk_hits").Add(st.DiskHits)
		sc.Counter("retries").Add(st.Retries)
		sc.Counter("quarantined").Add(st.Quarantined)
		sc.Counter("cells_done").Add(st.Done)
		sc.Gauge("workers").Set(float64(r.Workers()))
		var b bytes.Buffer
		if err := reg.WritePrometheus(&b, obs.Namespace); err != nil {
			return nil
		}
		return b.Bytes()
	})
	bound, err := srv.Start(addr)
	if err != nil {
		return nil, err
	}
	rep.Infof("observability endpoint on http://%s (/metrics /status /debug/pprof)", bound)
	return srv, nil
}
