// Command discosim runs the full-system DISCO experiments and regenerates
// the paper's tables and figures (see DESIGN.md for the experiment index).
//
// Usage:
//
//	discosim -exp fig5                # Figure 5 at full fidelity
//	discosim -exp all -quick          # everything, reduced settings
//	discosim -exp fig7 -benchmarks canneal,streamcluster -ops 8000
//	discosim -run disco -benchmark canneal -alg sc2   # one raw run
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/experiments"
	"github.com/disco-sim/disco/internal/fault"
	"github.com/disco-sim/disco/internal/metrics"
	"github.com/disco-sim/disco/internal/noc"
	"github.com/disco-sim/disco/internal/simrun"
	"github.com/disco-sim/disco/internal/trace"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment: table1|fig5|fig6|fig7|fig8|area|ablation|calibrate|motivation|sensitivity|composition|all")
		jsonOut = flag.String("json", "", "write all experiment results as JSON to this file (runs everything)")
		csvOut  = flag.String("csv", "", "write raw per-run rows (benchmark x mode) as CSV to this file")
		quick   = flag.Bool("quick", false, "reduced settings (fewer ops, 4 benchmarks)")
		ops     = flag.Int("ops", 0, "measured memory ops per core (0 = preset)")
		warmup  = flag.Int("warmup", 0, "warmup ops per core (0 = preset)")
		seed    = flag.Int64("seed", 1, "workload seed")
		benchs  = flag.String("benchmarks", "", "comma-separated benchmark subset")

		runMode = flag.String("run", "", "single run mode: baseline|ideal|cc|cnc|disco")
		bench   = flag.String("benchmark", "bodytrack", "benchmark for -run")
		alg     = flag.String("alg", "delta", "compression algorithm for -run")
		k       = flag.Int("k", 4, "mesh radix for -run")

		metricsOut   = flag.String("metrics", "", "with -run: write the metrics-registry JSON export to this file")
		metricsEvery = flag.Uint64("metrics-every", 0, "time-series sampling interval in cycles (0 = default)")
		traceBin     = flag.String("trace-bin", "", "with -run: write a binary event trace (analyze with discotrace)")
		faultSpec    = flag.String("fault-spec", "", `with -run: arm fault injection, e.g. "engine=0.01,stuck=32,payload=0.001,credit=0.001" (see internal/fault)`)
		faultSeed    = flag.Int64("fault-seed", 1, "with -run: fault-injection PRNG seed")

		jobs       = flag.Int("j", 0, "parallel simulation workers (0 = all cores); results are byte-identical at any setting")
		simWorkers = flag.Int("sim-workers", 1, "with -run: shard the NoC cycle engine across this many workers within the one simulation; results are byte-identical at any setting")
		noCache    = flag.Bool("no-cache", false, "disable the cross-figure run memo cache")
	)
	flag.Parse()

	if *runMode != "" {
		obs := observeOpts{metricsOut: *metricsOut, metricsEvery: *metricsEvery, traceBin: *traceBin,
			faultSpec: *faultSpec, faultSeed: *faultSeed, simWorkers: *simWorkers}
		if err := singleRun(*runMode, *bench, *alg, *k, *ops, *warmup, *seed, obs); err != nil {
			fmt.Fprintln(os.Stderr, "discosim:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "" && *jsonOut == "" && *csvOut == "" {
		flag.Usage()
		os.Exit(2)
	}
	o := experiments.Default()
	if *quick {
		o = experiments.Quick()
	}
	if *ops > 0 {
		o.Ops = *ops
	}
	if *warmup > 0 {
		o.Warmup = *warmup
	}
	o.Seed = *seed
	if *benchs != "" {
		o.Benchmarks = strings.Split(*benchs, ",")
	}
	// One scheduler for the whole invocation: experiments submit their
	// cells to it, and the memo cache dedupes shared baselines across
	// figures. Artifacts go to stdout/files; the summary goes to stderr
	// so redirected output stays byte-identical.
	o.Runner = simrun.New(*jobs, !*noCache)
	defer func() {
		st := o.Runner.Stats()
		if st.Submitted > 0 {
			fmt.Fprintf(os.Stderr, "simrun: %d cells (%d simulated, %d cache hits), j=%d\n",
				st.Submitted, st.Executed, st.Hits, o.Runner.Workers())
		}
	}()
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "discosim:", err)
			os.Exit(1)
		}
		if err := experiments.BatchCSV(o, *alg, f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			fmt.Fprintln(os.Stderr, "discosim:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "discosim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvOut)
		return
	}
	if *jsonOut != "" {
		rep, err := experiments.RunAll(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "discosim:", err)
			os.Exit(1)
		}
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "discosim:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "discosim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
		return
	}
	if err := runExperiments(*exp, o); err != nil {
		fmt.Fprintln(os.Stderr, "discosim:", err)
		os.Exit(1)
	}
}

// runExperiments dispatches one or all experiments.
func runExperiments(exp string, o experiments.Opts) error {
	want := func(name string) bool { return exp == name || exp == "all" }
	any := false
	if want("table1") {
		any = true
		r, err := experiments.Table1(o)
		if err != nil {
			return err
		}
		fmt.Println("== Table 1: compression scheme parameters ==")
		fmt.Println(r.Table())
	}
	if want("fig5") {
		any = true
		r, err := experiments.Fig5(o)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 5: latency, delta compression ==")
		fmt.Println(r.Table())
		fmt.Println(r.Chart())
		fmt.Printf("DISCO gain: %.1f%% over CC, %.1f%% over CNC\n\n",
			r.DiscoGainOverCC(), r.DiscoGainOverCNC())
	}
	if want("fig6") {
		any = true
		rs, err := experiments.Fig6(o)
		if err != nil {
			return err
		}
		for _, a := range []string{"fpc", "sc2"} {
			r := rs[a]
			fmt.Printf("== Figure 6: latency, %s ==\n", a)
			fmt.Println(r.Table())
			fmt.Printf("DISCO gain: %.1f%% over CC, %.1f%% over CNC\n\n",
				r.DiscoGainOverCC(), r.DiscoGainOverCNC())
		}
	}
	if want("fig7") {
		any = true
		r, err := experiments.Fig7(o)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 7: energy ==")
		fmt.Println(r.Table())
	}
	if want("fig8") {
		any = true
		r, err := experiments.Fig8(o)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 8: scalability ==")
		fmt.Println(r.Table())
		fmt.Println(r.Chart())
	}
	if want("area") {
		any = true
		fmt.Println("== Section 4.3: area overhead ==")
		fmt.Println(experiments.AreaTable())
	}
	if want("ablation") {
		any = true
		r, err := experiments.Ablation(o)
		if err != nil {
			return err
		}
		fmt.Println("== DISCO policy ablation ==")
		fmt.Println(r.Table())
	}
	if exp == "composition" { // analysis aid, not part of "all"
		any = true
		r, err := experiments.Composition(o)
		if err != nil {
			return err
		}
		fmt.Println("== on-chip energy composition ==")
		fmt.Println(r.Table())
	}
	if exp == "sensitivity" { // analysis aid, not part of "all"
		any = true
		r, err := experiments.Sensitivity(o)
		if err != nil {
			return err
		}
		fmt.Println("== NoC sensitivity (VC depth / flow control) ==")
		fmt.Println(r.Table())
	}
	if exp == "motivation" { // analysis aid, not part of "all"
		any = true
		r, err := experiments.Motivation(o)
		if err != nil {
			return err
		}
		fmt.Println("== DISCO motivation statistics ==")
		fmt.Println(r.Table())
	}
	if exp == "calibrate" { // not part of "all": it is a tuning aid
		any = true
		r, err := experiments.CalibrateThresholds(o, nil, nil)
		if err != nil {
			return err
		}
		fmt.Println("== threshold calibration (Section 3.2 training) ==")
		fmt.Println(r.Table())
	}
	if !any {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// observeOpts are the -run observability attachments and engine knobs.
type observeOpts struct {
	metricsOut   string
	metricsEvery uint64
	traceBin     string
	faultSpec    string
	faultSeed    int64
	simWorkers   int
}

// singleRun executes one raw simulation and prints its result line.
func singleRun(mode, bench, alg string, k, ops, warmup int, seed int64, obs observeOpts) error {
	prof, ok := trace.ByName(bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q (have %s)", bench, strings.Join(trace.Names(), ","))
	}
	var m cmp.Mode
	switch mode {
	case "baseline":
		m = cmp.Baseline
	case "ideal":
		m = cmp.Ideal
	case "cc":
		m = cmp.CC
	case "cnc":
		m = cmp.CNC
	case "disco":
		m = cmp.DISCO
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	var a compress.Algorithm
	if m != cmp.Baseline {
		var err error
		a, err = compress.New(alg)
		if err != nil {
			return err
		}
	}
	cfg := cmp.DefaultConfig(m, a, prof)
	cfg.K = k
	cfg.Seed = seed
	if ops > 0 {
		cfg.OpsPerCore = ops
	}
	if warmup > 0 {
		cfg.WarmupOps = warmup
	}
	if obs.faultSpec != "" {
		spec, err := fault.ParseSpec(obs.faultSpec)
		if err != nil {
			return err
		}
		spec.Seed = obs.faultSeed
		cfg.Fault = &spec
	}
	cfg.SimWorkers = obs.simWorkers
	sys, err := cmp.New(cfg)
	if err != nil {
		return err
	}
	defer sys.Close()
	var reg *metrics.Registry
	if obs.metricsOut != "" {
		reg = metrics.NewRegistry()
		sys.AttachMetrics(reg, obs.metricsEvery)
	}
	var bt *noc.BinaryTracer
	if obs.traceBin != "" {
		f, err := os.Create(obs.traceBin)
		if err != nil {
			return err
		}
		ncfg := sys.Network().Config()
		bt = noc.NewBinaryTracer(f, ncfg.Nodes())
		sys.Network().SetTracer(bt)
	}
	r, err := sys.Run()
	if bt != nil {
		if cerr := bt.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		// A stall carries a structured snapshot of everything in flight —
		// print it rather than just the headline.
		var se *cmp.StallError
		if errors.As(err, &se) && se.Snapshot != nil {
			fmt.Fprintln(os.Stderr, se.Snapshot.String())
		}
		return err
	}
	if reg != nil {
		f, err := os.Create(obs.metricsOut)
		if err != nil {
			return err
		}
		if err := reg.WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", obs.metricsOut)
	}
	if bt != nil {
		fmt.Printf("wrote %s (%d records)\n", obs.traceBin, bt.Count)
	}
	fmt.Println(r.Detailed())
	return nil
}
