package main

import (
	"testing"

	"github.com/disco-sim/disco/internal/experiments"
)

func TestSingleRunAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs")
	}
	for _, mode := range []string{"baseline", "ideal", "cc", "cnc", "disco"} {
		if err := singleRun(mode, "swaptions", "delta", 4, 400, 200, 1); err != nil {
			t.Errorf("%s: %v", mode, err)
		}
	}
}

func TestSingleRunRejectsBadInputs(t *testing.T) {
	if err := singleRun("warp", "swaptions", "delta", 4, 100, 50, 1); err == nil {
		t.Error("unknown mode should fail")
	}
	if err := singleRun("disco", "nope", "delta", 4, 100, 50, 1); err == nil {
		t.Error("unknown benchmark should fail")
	}
	if err := singleRun("disco", "swaptions", "bogus", 4, 100, 50, 1); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestRunExperimentsDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs")
	}
	o := experiments.Opts{Ops: 300, Warmup: 150, Seed: 1, Benchmarks: []string{"swaptions"}}
	for _, exp := range []string{"table1", "area", "motivation", "composition"} {
		if err := runExperiments(exp, o); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
	if err := runExperiments("fig99", o); err == nil {
		t.Error("unknown experiment should fail")
	}
}
