package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/experiments"
	"github.com/disco-sim/disco/internal/metrics"
	"github.com/disco-sim/disco/internal/obs"
	"github.com/disco-sim/disco/internal/simrun"
	"github.com/disco-sim/disco/internal/store"
	"github.com/disco-sim/disco/internal/tracefmt"
)

// TestExitCodeClassification pins the documented exit-code contract
// (README "Resumable campaigns"): each failure class maps to its code,
// with interruption taking precedence over the cancellation noise it
// causes, and a stalled cell diagnosed as a stall rather than a
// generic cell failure.
func TestExitCodeClassification(t *testing.T) {
	plain := errors.New("plain failure")
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"internal", plain, ExitError},
		{"wrapped internal", fmt.Errorf("campaign: %w", plain), ExitError},
		{"config", &configError{errors.New("unknown mode")}, ExitConfig},
		{"wrapped config", fmt.Errorf("setup: %w", &configError{plain}), ExitConfig},
		{"stall", &cmp.StallError{}, ExitStall},
		{"cell failure", &simrun.CellError{Attempts: 3, Err: plain}, ExitCellFailed},
		{"stalled cell is a stall", &simrun.CellError{Attempts: 1, Err: &cmp.StallError{}}, ExitStall},
		{"interrupted", fmt.Errorf("canceled: %w", simrun.ErrInterrupted), ExitInterrupted},
		{"interrupted beats cell failure",
			&simrun.CellError{Attempts: 1, Err: fmt.Errorf("drain: %w", simrun.ErrInterrupted)},
			ExitInterrupted},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("%s: exitCode(%v) = %d, want %d", c.name, c.err, got, c.want)
		}
	}
}

// TestCampaignServerExportsStoreCounters: the campaign /status and
// /metrics endpoints must carry the persistence counters (disk hits,
// retries, quarantined) alongside the scheduler ones.
func TestCampaignServerExportsStoreCounters(t *testing.T) {
	r := simrun.New(1, true)
	st, err := store.Open(t.TempDir(), store.Options{Version: "campaign-test"})
	if err != nil {
		t.Fatal(err)
	}
	r.SetStore(st)
	key := simrun.Key{Mode: "disco", Algorithm: "delta", Benchmark: "bodytrack",
		K: 4, Ops: 100, Warmup: 50, Seed: 1, Config: "c"}
	if err := st.Put(key.Canonical(), cmp.Results{Benchmark: "bodytrack"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(key, func() (cmp.Results, error) {
		t.Error("pre-seeded cell executed instead of replaying from disk")
		return cmp.Results{}, nil
	}).Wait(); err != nil {
		t.Fatal(err)
	}

	srv, err := startCampaignServer("127.0.0.1:0", r, obs.NewReporter(io.Discard, "discosim"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := http.Get("http://" + srv.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var status map[string]any
	if err := json.NewDecoder(res.Body).Decode(&status); err != nil {
		t.Fatalf("/status is not JSON: %v", err)
	}
	for field, want := range map[string]float64{
		"cells_submitted": 1, "cells_disk_hits": 1, "retries": 0, "quarantined": 0,
	} {
		got, ok := status[field].(float64)
		if !ok || got != want {
			t.Errorf("/status %s = %v, want %v", field, status[field], want)
		}
	}

	res, err = http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	text, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"disco_simrun_disk_hits 1", "disco_simrun_retries 0", "disco_simrun_quarantined 0",
	} {
		if !bytes.Contains(text, []byte(family)) {
			t.Errorf("/metrics missing %q:\n%s", family, text)
		}
	}
	if err := metrics.CheckPrometheusText(bytes.NewReader(text)); err != nil {
		t.Errorf("/metrics fails exposition lint: %v", err)
	}
}

// TestConfigMistakesClassifyAsConfig: every operator-input error the
// CLI produces must exit 2, not 1.
func TestConfigMistakesClassifyAsConfig(t *testing.T) {
	o := observeOpts{rep: obs.NewReporter(io.Discard, "discosim")}
	for name, err := range map[string]error{
		"unknown mode":       singleRun("warp", "swaptions", "delta", 4, 100, 50, 1, o),
		"unknown benchmark":  singleRun("disco", "nope", "delta", 4, 100, 50, 1, o),
		"unknown algorithm":  singleRun("disco", "swaptions", "bogus", 4, 100, 50, 1, o),
		"bad fault spec":     singleRun("disco", "swaptions", "delta", 4, 100, 50, 1, observeOpts{faultSpec: "engine=2.0", rep: o.rep}),
		"unknown experiment": runExperiments("fig99", experiments.Opts{}),
		"bad scaling list":   scalingRun("disco", "swaptions", "delta", 4, 100, 50, 1, o, "1,zero", ""),
	} {
		if err == nil {
			t.Errorf("%s: expected an error", name)
			continue
		}
		if got := exitCode(err); got != ExitConfig {
			t.Errorf("%s: exitCode = %d, want %d (err: %v)", name, got, ExitConfig, err)
		}
	}
}

func TestSingleRunAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs")
	}
	for _, mode := range []string{"baseline", "ideal", "cc", "cnc", "disco"} {
		if err := singleRun(mode, "swaptions", "delta", 4, 400, 200, 1, observeOpts{}); err != nil {
			t.Errorf("%s: %v", mode, err)
		}
	}
}

func TestSingleRunRejectsBadInputs(t *testing.T) {
	if err := singleRun("warp", "swaptions", "delta", 4, 100, 50, 1, observeOpts{}); err == nil {
		t.Error("unknown mode should fail")
	}
	if err := singleRun("disco", "nope", "delta", 4, 100, 50, 1, observeOpts{}); err == nil {
		t.Error("unknown benchmark should fail")
	}
	if err := singleRun("disco", "swaptions", "bogus", 4, 100, 50, 1, observeOpts{}); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestRunExperimentsDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs")
	}
	o := experiments.Opts{Ops: 300, Warmup: 150, Seed: 1, Benchmarks: []string{"swaptions"}}
	for _, exp := range []string{"table1", "area", "motivation", "composition"} {
		if err := runExperiments(exp, o); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
	if err := runExperiments("fig99", o); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestSingleRunObservabilityArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs")
	}
	dir := t.TempDir()
	obs := observeOpts{
		metricsOut: filepath.Join(dir, "metrics.json"),
		traceBin:   filepath.Join(dir, "trace.bin"),
	}
	if err := singleRun("disco", "swaptions", "delta", 4, 400, 200, 1, obs); err != nil {
		t.Fatal(err)
	}
	// The metrics export is valid JSON with the expected scopes.
	raw, err := os.ReadFile(obs.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var exp struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &exp); err != nil {
		t.Fatalf("metrics export is not JSON: %v", err)
	}
	if exp.Counters["noc.injected"] == 0 || exp.Counters["cmp.l2_misses"] == 0 {
		t.Errorf("expected nonzero noc/cmp counters, got %d/%d",
			exp.Counters["noc.injected"], exp.Counters["cmp.l2_misses"])
	}
	// The binary trace parses end to end.
	f, err := os.Open(obs.traceBin)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := tracefmt.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		if _, err := rd.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		n++
	}
	if n == 0 {
		t.Error("binary trace contains no records")
	}
}

// TestSingleRunHTTPObservability smoke-tests the -http endpoint against
// a live run: /status decodes as JSON naming the run, /metrics passes
// the Prometheus text lint and carries the profiler families, and the
// pprof handlers answer.
func TestSingleRunHTTPObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs")
	}
	checked := false
	o := observeOpts{
		metricsOut: filepath.Join(t.TempDir(), "metrics.json"),
		profile:    true,
		httpAddr:   "127.0.0.1:0",
		rep:        obs.NewReporter(io.Discard, "discosim"),
		httpReady: func(addr string) {
			checked = true
			res, err := http.Get("http://" + addr + "/status")
			if err != nil {
				t.Fatal(err)
			}
			defer res.Body.Close()
			var st struct {
				Mode      string `json:"mode"`
				Benchmark string `json:"benchmark"`
			}
			if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
				t.Fatalf("/status is not JSON: %v", err)
			}
			if st.Mode != "disco" || st.Benchmark != "swaptions" {
				t.Errorf("/status = %+v, want disco/swaptions", st)
			}

			res, err = http.Get("http://" + addr + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			defer res.Body.Close()
			text, err := io.ReadAll(res.Body)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Contains(text, []byte("disco_obs_profile_steps")) {
				t.Error("/metrics is missing the live profiler families")
			}
			if !bytes.Contains(text, []byte("disco_noc_injected")) {
				t.Error("/metrics is missing the published simulation families")
			}
			if err := metrics.CheckPrometheusText(bytes.NewReader(text)); err != nil {
				t.Errorf("/metrics fails exposition lint: %v", err)
			}

			res, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
			if err != nil {
				t.Fatal(err)
			}
			res.Body.Close()
			if res.StatusCode != http.StatusOK {
				t.Errorf("/debug/pprof/cmdline: status %d", res.StatusCode)
			}
		},
	}
	if err := singleRun("disco", "swaptions", "delta", 4, 400, 200, 1, o); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Error("httpReady hook never fired")
	}
}

// TestObservabilityIsPurelyObservational is the top-level golden gate
// for the whole observability layer: the same run executed bare and
// with profiler + HTTP endpoint + boundary probe all armed must produce
// byte-identical metrics and binary-trace artifacts. Anything the
// profiler or the /status publisher perturbs in simulation state would
// show up here.
func TestObservabilityIsPurelyObservational(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs")
	}
	runOnce := func(observed bool) (metricsRaw, traceRaw []byte) {
		dir := t.TempDir()
		o := observeOpts{
			metricsOut: filepath.Join(dir, "metrics.json"),
			traceBin:   filepath.Join(dir, "trace.bin"),
			simWorkers: 2,
			rep:        obs.NewReporter(io.Discard, "discosim"),
		}
		if observed {
			o.profile = true
			o.httpAddr = "127.0.0.1:0"
			o.httpEvery = 64 // probe aggressively to maximize interference surface
		}
		if err := singleRun("disco", "swaptions", "delta", 4, 400, 200, 1, o); err != nil {
			t.Fatal(err)
		}
		m, err := os.ReadFile(o.metricsOut)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := os.ReadFile(o.traceBin)
		if err != nil {
			t.Fatal(err)
		}
		return m, tr
	}
	bareMetrics, bareTrace := runOnce(false)
	obsMetrics, obsTrace := runOnce(true)
	if !bytes.Equal(bareMetrics, obsMetrics) {
		t.Error("metrics artifact differs with observability armed")
	}
	if !bytes.Equal(bareTrace, obsTrace) {
		t.Error("binary trace differs with observability armed")
	}
}

// TestSingleRunProfileReport checks -profile routes a phase-profile
// block through the structured reporter.
func TestSingleRunProfileReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs")
	}
	var buf bytes.Buffer
	o := observeOpts{profile: true, rep: obs.NewReporter(&buf, "discosim")}
	if err := singleRun("disco", "swaptions", "delta", 4, 400, 200, 1, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "discosim: phase profile") {
		t.Errorf("reporter output missing profile block:\n%s", out)
	}
	if !strings.Contains(out, "cycles/s") {
		t.Errorf("profile block missing throughput headline:\n%s", out)
	}
}

// TestScalingRunCSV checks the -scaling sweep writes a well-formed
// curve CSV and rejects malformed worker lists.
func TestScalingRunCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs")
	}
	csvPath := filepath.Join(t.TempDir(), "scaling.csv")
	o := observeOpts{rep: obs.NewReporter(io.Discard, "discosim")}
	if err := scalingRun("disco", "swaptions", "delta", 4, 300, 150, 1, o, "1, 2", csvPath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 {
		t.Fatalf("scaling CSV has %d lines, want header + 2 rows:\n%s", len(lines), raw)
	}
	if lines[0] != obs.ScalingHeader() {
		t.Errorf("CSV header = %q, want %q", lines[0], obs.ScalingHeader())
	}
	for i, prefix := range []string{"1,", "2,"} {
		if !strings.HasPrefix(lines[i+1], prefix) {
			t.Errorf("row %d = %q, want prefix %q", i+1, lines[i+1], prefix)
		}
	}
	if err := scalingRun("disco", "swaptions", "delta", 4, 100, 50, 1, o, "1,zero", ""); err == nil {
		t.Error("malformed -scaling list should fail")
	}
	if err := scalingRun("disco", "swaptions", "delta", 4, 100, 50, 1, o, "0", ""); err == nil {
		t.Error("zero worker count should fail")
	}
}

func TestSingleRunFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs")
	}
	obs := observeOpts{faultSpec: "engine=0.05,stuck=16,payload=0.01,credit=0.005", faultSeed: 7}
	if err := singleRun("disco", "swaptions", "delta", 4, 400, 200, 1, obs); err != nil {
		t.Errorf("chaos run: %v", err)
	}
	bad := observeOpts{faultSpec: "engine=2.0", faultSeed: 1}
	if err := singleRun("disco", "swaptions", "delta", 4, 100, 50, 1, bad); err == nil {
		t.Error("out-of-range fault rate should fail")
	}
}
