package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/disco-sim/disco/internal/experiments"
	"github.com/disco-sim/disco/internal/tracefmt"
)

func TestSingleRunAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs")
	}
	for _, mode := range []string{"baseline", "ideal", "cc", "cnc", "disco"} {
		if err := singleRun(mode, "swaptions", "delta", 4, 400, 200, 1, observeOpts{}); err != nil {
			t.Errorf("%s: %v", mode, err)
		}
	}
}

func TestSingleRunRejectsBadInputs(t *testing.T) {
	if err := singleRun("warp", "swaptions", "delta", 4, 100, 50, 1, observeOpts{}); err == nil {
		t.Error("unknown mode should fail")
	}
	if err := singleRun("disco", "nope", "delta", 4, 100, 50, 1, observeOpts{}); err == nil {
		t.Error("unknown benchmark should fail")
	}
	if err := singleRun("disco", "swaptions", "bogus", 4, 100, 50, 1, observeOpts{}); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestRunExperimentsDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs")
	}
	o := experiments.Opts{Ops: 300, Warmup: 150, Seed: 1, Benchmarks: []string{"swaptions"}}
	for _, exp := range []string{"table1", "area", "motivation", "composition"} {
		if err := runExperiments(exp, o); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
	if err := runExperiments("fig99", o); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestSingleRunObservabilityArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs")
	}
	dir := t.TempDir()
	obs := observeOpts{
		metricsOut: filepath.Join(dir, "metrics.json"),
		traceBin:   filepath.Join(dir, "trace.bin"),
	}
	if err := singleRun("disco", "swaptions", "delta", 4, 400, 200, 1, obs); err != nil {
		t.Fatal(err)
	}
	// The metrics export is valid JSON with the expected scopes.
	raw, err := os.ReadFile(obs.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var exp struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &exp); err != nil {
		t.Fatalf("metrics export is not JSON: %v", err)
	}
	if exp.Counters["noc.injected"] == 0 || exp.Counters["cmp.l2_misses"] == 0 {
		t.Errorf("expected nonzero noc/cmp counters, got %d/%d",
			exp.Counters["noc.injected"], exp.Counters["cmp.l2_misses"])
	}
	// The binary trace parses end to end.
	f, err := os.Open(obs.traceBin)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := tracefmt.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		if _, err := rd.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		n++
	}
	if n == 0 {
		t.Error("binary trace contains no records")
	}
}

func TestSingleRunFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs")
	}
	obs := observeOpts{faultSpec: "engine=0.05,stuck=16,payload=0.01,credit=0.005", faultSeed: 7}
	if err := singleRun("disco", "swaptions", "delta", 4, 400, 200, 1, obs); err != nil {
		t.Errorf("chaos run: %v", err)
	}
	bad := observeOpts{faultSpec: "engine=2.0", faultSeed: 1}
	if err := singleRun("disco", "swaptions", "delta", 4, 100, 50, 1, bad); err == nil {
		t.Error("out-of-range fault rate should fail")
	}
}
