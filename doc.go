// Package disco is a from-scratch Go reproduction of "DISCO: A Low
// Overhead In-Network Data Compressor for Energy-Efficient Chip
// Multi-Processors" (Wang et al., DAC 2016).
//
// The public surface lives in the internal packages (this repository is a
// research artifact, not a dependency):
//
//	internal/compress    block compression algorithms (delta, BΔI, FPC,
//	                     SFPC, C-Pack, SC²)
//	internal/noc         cycle-accurate wormhole mesh NoC with DISCO
//	                     in-router compression
//	internal/disco       the DISCO arbitrator + engine (Eq. 1/2, shadow
//	                     packets, separate compression)
//	internal/cache       L1 + compressed NUCA bank structures
//	internal/mem         DRAM model
//	internal/trace       synthetic PARSEC-like workloads
//	internal/energy      Orion/CACTI-style energy & area models
//	internal/cmp         the full-system CMP simulator (5 modes)
//	internal/experiments the table/figure regeneration harness
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every table and figure:
//
//	go test -bench=. -benchmem .
package disco
