package disco_test

// One benchmark per table/figure of the paper's evaluation (Section 4),
// plus the DESIGN.md §5 ablations and micro-benchmarks of the hot
// components. The figure benches run reduced-size simulations so a
// default `go test -bench=. -benchmem` stays affordable; full-fidelity
// numbers come from `go run ./cmd/discosim -exp all` (see EXPERIMENTS.md).

import (
	"math/rand"
	"testing"

	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/disco"
	"github.com/disco-sim/disco/internal/energy"
	"github.com/disco-sim/disco/internal/experiments"
	"github.com/disco-sim/disco/internal/noc"
	"github.com/disco-sim/disco/internal/trace"
)

// benchOpts keeps one iteration around a second.
func benchOpts() experiments.Opts {
	return experiments.Opts{
		Ops: 1200, Warmup: 600, Seed: 1,
		Benchmarks: []string{"bodytrack", "canneal"},
	}
}

// BenchmarkTable1CompressionSchemes regenerates Table 1 (latency and
// compression-ratio parameters of every scheme).
func BenchmarkTable1CompressionSchemes(b *testing.B) {
	var last experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(experiments.Opts{Benchmarks: []string{"bodytrack", "freqmine"}})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.Ratio, row.Scheme+"_ratio")
	}
}

// BenchmarkFig5DeltaLatency regenerates Figure 5: normalized on-chip data
// access latency with the paper's delta compressor.
func BenchmarkFig5DeltaLatency(b *testing.B) {
	var last experiments.LatencyResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.GMean.CC, "CC_norm_lat")
	b.ReportMetric(last.GMean.CNC, "CNC_norm_lat")
	b.ReportMetric(last.GMean.DISCO, "DISCO_norm_lat")
	b.ReportMetric(last.DiscoGainOverCC(), "gain_vs_CC_%")
}

// BenchmarkFig6FpcLatency regenerates the FPC half of Figure 6.
func BenchmarkFig6FpcLatency(b *testing.B) {
	benchFig6(b, "fpc")
}

// BenchmarkFig6Sc2Latency regenerates the SC² half of Figure 6.
func BenchmarkFig6Sc2Latency(b *testing.B) {
	benchFig6(b, "sc2")
}

func benchFig6(b *testing.B, alg string) {
	b.Helper()
	var last experiments.LatencyResult
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = rs[alg]
	}
	b.ReportMetric(last.GMean.CC, "CC_norm_lat")
	b.ReportMetric(last.GMean.CNC, "CNC_norm_lat")
	b.ReportMetric(last.GMean.DISCO, "DISCO_norm_lat")
	b.ReportMetric(last.DiscoGainOverCC(), "gain_vs_CC_%")
	b.ReportMetric(last.DiscoGainOverCNC(), "gain_vs_CNC_%")
}

// BenchmarkFig7Energy regenerates Figure 7: normalized memory-subsystem
// energy (baseline = 1.0).
func BenchmarkFig7Energy(b *testing.B) {
	o := benchOpts()
	o.Benchmarks = []string{"canneal", "streamcluster"}
	var last experiments.EnergyResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.GMean.CC, "CC_norm_energy")
	b.ReportMetric(last.GMean.CNC, "CNC_norm_energy")
	b.ReportMetric(last.GMean.DISCO, "DISCO_norm_energy")
}

// BenchmarkFig8Scalability regenerates Figure 8: DISCO's gain over CC at
// 2x2 / 4x4 / 8x8 mesh sizes.
func BenchmarkFig8Scalability(b *testing.B) {
	o := benchOpts()
	o.Benchmarks = []string{"canneal"}
	var last experiments.ScaleResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.GainPct, sizeName(row.K)+"_gain_%")
	}
}

func sizeName(k int) string {
	switch k {
	case 2:
		return "2x2"
	case 4:
		return "4x4"
	case 8:
		return "8x8"
	}
	return "kxk"
}

// BenchmarkAreaOverhead regenerates the Section 4.3 area estimation.
func BenchmarkAreaOverhead(b *testing.B) {
	var r energy.AreaReport
	for i := 0; i < b.N; i++ {
		r = energy.Area("disco", 16, 4)
	}
	b.ReportMetric(r.OverheadVsRouterPct, "vs_router_%")
	b.ReportMetric(r.OverheadVsCachePct, "vs_cache_%")
	cnc := energy.Area("cnc", 16, 4)
	b.ReportMetric(cnc.EngineTotal/r.EngineTotal, "cnc_over_disco_x")
}

// BenchmarkAblationPolicies measures the DESIGN.md §5 DISCO policy
// ablations (non-blocking, separate compression, low-priority rule, ...).
func BenchmarkAblationPolicies(b *testing.B) {
	o := experiments.Opts{Ops: 1000, Warmup: 500, Seed: 1, Benchmarks: []string{"canneal"}}
	var last experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablation(o)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.Normalized, row.Variant)
	}
}

// --- micro-benchmarks -------------------------------------------------------

// benchBlocks builds a deterministic mixed-content sample.
func benchBlocks() [][]byte {
	prof, _ := trace.ByName("bodytrack")
	out := make([][]byte, 256)
	for i := range out {
		out[i] = prof.Content(trace.PrivateBase(i%4) + uint64(i))
	}
	return out
}

func benchCompress(b *testing.B, alg compress.Algorithm) {
	b.Helper()
	blocks := benchBlocks()
	if s, ok := alg.(*compress.SC2); ok {
		s.Train(blocks)
	}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		c := alg.Compress(blocks[i%len(blocks)])
		total += c.SizeBytes()
	}
	b.SetBytes(compress.BlockSize)
	_ = total
}

// BenchmarkCompressDelta measures the paper's delta codec throughput.
func BenchmarkCompressDelta(b *testing.B) { benchCompress(b, compress.NewDelta()) }

// BenchmarkCompressBDI measures the BΔI codec throughput.
func BenchmarkCompressBDI(b *testing.B) { benchCompress(b, compress.NewBDI()) }

// BenchmarkCompressFPC measures the FPC codec throughput.
func BenchmarkCompressFPC(b *testing.B) { benchCompress(b, compress.NewFPC()) }

// BenchmarkCompressCPack measures the C-Pack codec throughput.
func BenchmarkCompressCPack(b *testing.B) { benchCompress(b, compress.NewCPack()) }

// BenchmarkCompressSC2 measures the SC² codec throughput.
func BenchmarkCompressSC2(b *testing.B) { benchCompress(b, compress.NewSC2()) }

// BenchmarkCompressHybrid measures the fused probe-then-encode selection
// path: one shared scan feeds every probe-aware unit; only the winner
// (or a non-probe fallback like CPack) runs a full encode.
func BenchmarkCompressHybrid(b *testing.B) {
	s := compress.NewSC2()
	s.Train(benchBlocks())
	benchCompress(b, compress.NewHybrid(
		compress.NewDelta(), compress.NewBDI(), compress.NewFPC(), s))
}

// BenchmarkDecompressDelta measures delta decode throughput.
func BenchmarkDecompressDelta(b *testing.B) {
	alg := compress.NewDelta()
	blocks := benchBlocks()
	comp := make([]compress.Compressed, len(blocks))
	for i, blk := range blocks {
		comp[i] = alg.Compress(blk)
	}
	b.SetBytes(compress.BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Decompress(comp[i%len(comp)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNoCStepIdle measures the simulator's per-cycle cost on an idle
// 4x4 mesh (the fast path the idle-router skip optimizes).
func BenchmarkNoCStepIdle(b *testing.B) {
	net, err := noc.New(noc.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// BenchmarkNoCStepLoaded measures per-cycle cost under DISCO load.
func BenchmarkNoCStepLoaded(b *testing.B) {
	cfg := noc.DefaultConfig()
	dc := disco.DefaultConfig(compress.NewDelta())
	cfg.Disco = &dc
	net, err := noc.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tc := noc.DefaultTraffic()
	tc.InjectionRate = 0.05
	gen := noc.NewTrafficGen(net, tc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Step()
		net.Step()
	}
}

// benchNoCStepMesh8 measures per-cycle cost of a loaded 8x8 DISCO mesh
// at a given worker count — the serial/parallel pair quantifies the
// two-phase engine's intra-simulation speedup (`-sim-workers`).
func benchNoCStepMesh8(b *testing.B, workers int) {
	b.Helper()
	cfg := noc.DefaultConfig()
	cfg.K = 8
	dc := disco.DefaultConfig(compress.NewDelta())
	cfg.Disco = &dc
	net, err := noc.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	net.SetWorkers(workers)
	tc := noc.DefaultTraffic()
	tc.InjectionRate = 0.08
	gen := noc.NewTrafficGen(net, tc)
	for i := 0; i < 500; i++ {
		gen.Step()
		net.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Step()
		net.Step()
	}
}

// BenchmarkNoCStepMesh8Serial is the serial-engine reference.
func BenchmarkNoCStepMesh8Serial(b *testing.B) { benchNoCStepMesh8(b, 1) }

// BenchmarkNoCStepMesh8Workers4 shards compute across 4 workers.
func BenchmarkNoCStepMesh8Workers4(b *testing.B) { benchNoCStepMesh8(b, 4) }

// BenchmarkTraceGeneration measures workload-stream generation.
func BenchmarkTraceGeneration(b *testing.B) {
	prof, _ := trace.ByName("canneal")
	g := trace.NewGenerator(&prof, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

// BenchmarkBlockContent measures block materialization (pattern synth).
func BenchmarkBlockContent(b *testing.B) {
	prof, _ := trace.ByName("canneal")
	rng := rand.New(rand.NewSource(1))
	b.SetBytes(compress.BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prof.Content(uint64(rng.Intn(1 << 20)))
	}
}
