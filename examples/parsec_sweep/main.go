// parsec_sweep reproduces a reduced Figure 5: normalized on-chip data
// access latency of CC, CNC and DISCO (Ideal = 1.0) over a subset of the
// synthetic PARSEC workloads with the paper's delta compressor.
//
// Run the full-fidelity version with: go run ./cmd/discosim -exp fig5
package main

import (
	"fmt"
	"log"

	"github.com/disco-sim/disco/internal/experiments"
)

func main() {
	o := experiments.Opts{
		Ops: 4000, Warmup: 2000, Seed: 1,
		Benchmarks: []string{"bodytrack", "canneal", "freqmine", "swaptions", "x264"},
	}
	fmt.Println("running Fig.5-style sweep (delta compression, 4x4 CMP)...")
	r, err := experiments.Fig5(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Table())
	fmt.Printf("DISCO beats CC by %.1f%% and CNC by %.1f%% (gmean)\n",
		r.DiscoGainOverCC(), r.DiscoGainOverCNC())
}
