// scalability reproduces a reduced Figure 8: how DISCO's advantage over
// per-bank cache compression (CC) grows with mesh size (2x2 -> 4x4 ->
// 8x8), because larger networks expose more queueing to overlap and more
// hops of fat-packet serialization to avoid.
//
// Run the full-fidelity version with: go run ./cmd/discosim -exp fig8
package main

import (
	"fmt"
	"log"

	"github.com/disco-sim/disco/internal/experiments"
)

func main() {
	o := experiments.Opts{
		Ops: 2500, Warmup: 1500, Seed: 1,
		Benchmarks: []string{"bodytrack", "canneal", "x264"},
	}
	fmt.Println("running Fig.8-style mesh-size sweep (this takes a minute)...")
	r, err := experiments.Fig8(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Table())
	for _, row := range r.Rows {
		fmt.Printf("%dx%d mesh: DISCO gain over CC = %.1f%%\n", row.K, row.K, row.GainPct)
	}
}
