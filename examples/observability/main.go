// observability demonstrates the telemetry layer end to end: attach a
// metrics registry and a binary tracer to one DISCO run, export the
// registry as JSON + time-series CSV, and analyze the trace in-process
// the way cmd/discotrace does — per-packet latency breakdown and the
// engine-overlap ratio from Section 3.2 of the paper.
//
// CLI equivalent:
//
//	go run ./cmd/discosim -run disco -benchmark canneal \
//	    -metrics metrics.json -trace-bin trace.bin
//	go run ./cmd/discotrace trace.bin
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/metrics"
	"github.com/disco-sim/disco/internal/noc"
	"github.com/disco-sim/disco/internal/trace"
	"github.com/disco-sim/disco/internal/tracefmt"
)

func main() {
	prof, ok := trace.ByName("canneal")
	if !ok {
		log.Fatal("benchmark canneal not found")
	}
	alg, err := compress.New("delta")
	if err != nil {
		log.Fatal(err)
	}
	cfg := cmp.DefaultConfig(cmp.DISCO, alg, prof)
	cfg.OpsPerCore = 2000
	cfg.WarmupOps = 1000

	sys, err := cmp.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Telemetry attachment 1: the metrics registry, sampled every 512
	// simulated cycles.
	reg := metrics.NewRegistry()
	sys.AttachMetrics(reg, 512)

	// Telemetry attachment 2: a binary event trace, kept in memory here;
	// discosim -trace-bin streams the same bytes to a file.
	var traceBuf bytes.Buffer
	ncfg := sys.Network().Config()
	bt := noc.NewBinaryTracer(&traceBuf, ncfg.Nodes())
	sys.Network().SetTracer(bt)

	r, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := bt.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %s/DISCO: on-chip miss latency %.2f cyc, %d trace records, %d bytes\n\n",
		cfg.Profile.Name, r.AvgMissLatency, bt.Count, traceBuf.Len())

	// The registry snapshot: counters evaluated after the run.
	snap := reg.Snapshot()
	fmt.Println("selected counters from the metrics registry:")
	for _, name := range []string{
		"noc.injected", "noc.flit_hops", "noc.compressions",
		"noc.engine_releases", "cmp.l2_misses", "cmp.residual_conversions",
	} {
		fmt.Printf("  %-26s %d\n", name, snap.Counters[name])
	}
	fmt.Printf("  %-26s %.3f\n\n", "noc.overlap_ratio", snap.Gauges["noc.overlap_ratio"])

	fmt.Printf("time series: %d columns x %d rows at %d-cycle interval "+
		"(reg.WriteSeriesCSV for the full table)\n\n",
		len(snap.Series.Columns), len(snap.Series.Rows), snap.Series.IntervalCycles)

	// Replay the trace the way discotrace does: pair injects with ejects
	// and split each packet's latency into queue / serialization / engine.
	if err := replay(&traceBuf); err != nil {
		log.Fatal(err)
	}
}

// replay decodes the binary trace and prints the aggregate breakdown.
func replay(raw io.Reader) error {
	rd, err := tracefmt.NewReader(raw)
	if err != nil {
		return err
	}
	inject := map[uint64]uint64{}
	var pkts, totalSum, queueSum, serialSum, engineSum uint64
	var busySum, exposedSum uint64
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if !rec.HasPacket {
			continue
		}
		switch rec.Kind {
		case tracefmt.KindInject:
			inject[rec.Pkt.ID] = rec.Cycle
		case tracefmt.KindEject:
			start, ok := inject[rec.Pkt.ID]
			if !ok {
				continue
			}
			delete(inject, rec.Pkt.ID)
			total := rec.Cycle - start
			stall := min(rec.Pkt.Queueing, total)
			engine := min(rec.Pkt.EngineStall, stall)
			pkts++
			totalSum += total
			queueSum += stall - engine
			serialSum += total - stall
			engineSum += engine
			busySum += rec.Pkt.EngineCycles
			exposedSum += engine
		}
	}
	if pkts == 0 {
		return fmt.Errorf("trace contains no delivered packets")
	}
	f := func(v uint64) float64 { return float64(v) / float64(pkts) }
	fmt.Printf("trace replay: %d delivered packets\n", pkts)
	fmt.Printf("  mean latency %.2f = queue %.2f + serialization %.2f + engine %.2f cyc\n",
		f(totalSum), f(queueSum), f(serialSum), f(engineSum))
	if busySum > 0 {
		fmt.Printf("  engine overlap: %d of %d engine cycles hidden (ratio %.2f)\n",
			busySum-exposedSum, busySum,
			float64(busySum-exposedSum)/float64(busySum))
	}
	return nil
}
