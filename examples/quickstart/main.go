// Quickstart: the three layers of the DISCO library in one file —
// (1) compress a cache block, (2) run a DISCO mesh with synthetic
// traffic, (3) run a small full-system simulation.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/disco"
	"github.com/disco-sim/disco/internal/noc"
	"github.com/disco-sim/disco/internal/trace"
)

func main() {
	// --- 1. Block compression ------------------------------------------
	block := make([]byte, compress.BlockSize)
	base := uint64(0x7FFE_0000_1000)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(block[i*8:], base+uint64(i)*24)
	}
	alg := compress.NewDelta()
	c := alg.Compress(block)
	fmt.Printf("delta: 64B block -> %dB (%.2fx), comp %d cyc, decomp %d cyc\n",
		c.SizeBytes(), c.Ratio(), alg.CompLatency(), alg.DecompLatency())
	round, err := alg.Decompress(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip ok: %v\n\n", string(round[0]) == string(block[0]))

	// --- 2. A DISCO mesh under synthetic load ---------------------------
	ncfg := noc.DefaultConfig()
	dc := disco.DefaultConfig(compress.NewDelta())
	ncfg.Disco = &dc
	net, err := noc.New(ncfg)
	if err != nil {
		log.Fatal(err)
	}
	tc := noc.DefaultTraffic()
	tc.Pattern = noc.Hotspot
	tc.HotNode = 5
	gen := noc.NewTrafficGen(net, tc)
	for i := 0; i < 5000; i++ {
		gen.Step()
		net.Step()
	}
	net.RunUntilQuiescent(100000)
	s := net.Stats()
	fmt.Printf("4x4 DISCO mesh: %d packets, mean latency %.1f cycles\n",
		s.Ejected, s.PacketLatency.Mean())
	fmt.Printf("in-network: %d compressions, %d decompressions (%d shadow releases)\n\n",
		s.Compressions, s.Decompressions, s.EngineReleases)

	// --- 3. Full-system run ---------------------------------------------
	prof, _ := trace.ByName("bodytrack")
	cfg := cmp.DefaultConfig(cmp.DISCO, compress.NewDelta(), prof)
	cfg.OpsPerCore = 2000
	cfg.WarmupOps = 1000
	sys, err := cmp.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("full system:", r)
}
