// energy_report reproduces a reduced Figure 7: memory-subsystem energy of
// CC, CNC and DISCO normalized to the no-compression baseline, with
// DISCO's absolute component breakdown (router/link/cache/DRAM/
// compressor/leakage).
//
// Run the full-fidelity version with: go run ./cmd/discosim -exp fig7
package main

import (
	"fmt"
	"log"

	"github.com/disco-sim/disco/internal/experiments"
)

func main() {
	o := experiments.Opts{
		Ops: 4000, Warmup: 2000, Seed: 1,
		Benchmarks: []string{"canneal", "streamcluster", "x264", "facesim"},
	}
	fmt.Println("running Fig.7-style energy study (delta compression)...")
	r, err := experiments.Fig7(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Table())
	fmt.Println("DISCO energy breakdown per benchmark:")
	for _, row := range r.Rows {
		fmt.Printf("  %-14s %s\n", row.Bench, row.DiscoBreakdown)
	}
	fmt.Println()
	fmt.Println(experiments.AreaTable())
}
