// trace_replay demonstrates the external-trace workflow: snapshot a
// synthetic workload into the portable trace format, read it back, and
// drive a full-system DISCO run from the replayed streams. The same path
// accepts traces captured from any other simulator (gem5, Pin, ...) once
// converted to the one-line-per-access format.
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/trace"
)

func main() {
	prof, _ := trace.ByName("freqmine")

	// 1. Record per-core traces (normally tracegen writes these to disk).
	var files []bytes.Buffer
	files = make([]bytes.Buffer, 16)
	for core := 0; core < 16; core++ {
		g := trace.NewGenerator(&prof, core, 7)
		if err := g.Err(); err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteTrace(&files[core], trace.Record(g, 3000)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("recorded 16 traces, %d bytes each (approx)\n", files[0].Len())

	// 2. Read them back and build replay streams.
	streams := make([]trace.Stream, 16)
	for core := range streams {
		accs, err := trace.ReadTrace(&files[core])
		if err != nil {
			log.Fatal(err)
		}
		streams[core] = trace.NewReplay(accs)
	}

	// 3. Drive the full system from the replays.
	cfg := cmp.DefaultConfig(cmp.DISCO, compress.NewDelta(), prof)
	cfg.Streams = streams
	cfg.OpsPerCore, cfg.WarmupOps = 2000, 1000
	sys, err := cmp.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replayed run:", r)
}
