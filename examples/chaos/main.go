// chaos demonstrates the fault-injection and resilience layer: a
// full-system DISCO run with all three fault classes armed (transient
// engine faults, in-flight payload bit-flips, link credit loss), the
// graceful-degradation machinery that keeps the run correct (shadow
// recovery, sink verification, the per-router circuit breaker), and the
// progress watchdog that turns a genuinely wedged simulation into a
// typed, diagnosable error instead of a hung process.
package main

import (
	"errors"
	"fmt"
	"log"

	"github.com/disco-sim/disco/internal/cmp"
	"github.com/disco-sim/disco/internal/compress"
	"github.com/disco-sim/disco/internal/fault"
	"github.com/disco-sim/disco/internal/trace"
)

func main() {
	prof, _ := trace.ByName("canneal")
	alg, err := compress.New("delta")
	if err != nil {
		log.Fatal(err)
	}

	// 1. A chaos run: every fault class armed at rates high enough to
	// matter. The run must still complete, and every data block must
	// still arrive bit-exact — corruption is recovered from the retained
	// original, never delivered.
	cfg := cmp.DefaultConfig(cmp.DISCO, alg, prof)
	cfg.OpsPerCore, cfg.WarmupOps = 2000, 1000
	cfg.Fault = &fault.Spec{
		Seed:        7,
		EngineRate:  0.05, // 5% of engine jobs wedge the engine
		EngineStuck: 16,   // ... for 16 cycles each
		PayloadRate: 0.01, // 1% of compressed traversals flip a bit
		CreditRate:  0.005,
	}
	sys, err := cmp.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("chaos run completed:")
	fmt.Printf("  cycles %d, avg miss latency %.1f\n", res.Cycles, res.AvgMissLatency)
	fmt.Printf("  %s\n\n", res.Fault)

	// 2. The same spec with a silent configuration is byte-identical to
	// no fault layer at all — injection is free when disabled.
	quiet := cfg
	quiet.Fault = &fault.Spec{}
	qsys, err := cmp.New(quiet)
	if err != nil {
		log.Fatal(err)
	}
	qres, err := qsys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disabled spec: cycles %d (fault stats: %v) — identical to a fault-free build\n\n",
		qres.Cycles, qres.Fault)

	// 3. A wedged run: every credit is lost and none come back within
	// the run. The progress watchdog notices the frozen progress
	// signature long before the cycle budget and returns a *StallError
	// whose snapshot shows exactly what is stuck where.
	wedged := cfg
	wedged.Fault = &fault.Spec{Seed: 1, CreditRate: 1, CreditRecovery: 50_000_000}
	wedged.StallWindow = 5_000
	wsys, err := cmp.New(wedged)
	if err != nil {
		log.Fatal(err)
	}
	_, err = wsys.Run()
	var se *cmp.StallError
	if !errors.As(err, &se) {
		log.Fatalf("expected a stall, got: %v", err)
	}
	fmt.Printf("wedged run detected: %v\n\n", se)
	fmt.Println(se.Snapshot.String())
}
