GO ?= go

.PHONY: all build lint vet fmt test race fuzz-smoke bench-snapshot ci

all: build lint test

build:
	$(GO) build ./...

# discolint is the repo's own static-analysis suite (internal/lint):
# determinism and conservation invariants. Zero findings is the gate.
lint: vet fmt
	$(GO) run ./cmd/discolint ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short native-fuzzing pass over the compressor decoders.
fuzz-smoke:
	$(GO) test -run TestNone -fuzz=Fuzz -fuzztime=10s ./internal/compress

# One pass over every benchmark (sanity, not timing-stable) plus an
# instrumented quick run whose metrics JSON snapshots the simulator's
# behaviour at this commit; CI uploads bench/ as a workflow artifact.
bench-snapshot:
	@mkdir -p bench
	$(GO) test -run TestNone -bench=. -benchtime=1x . | tee bench/bench.txt
	$(GO) run ./cmd/discosim -run disco -benchmark canneal \
		-ops 2000 -warmup 1000 -metrics bench/metrics.json

ci: build lint race fuzz-smoke
