GO ?= go

.PHONY: all build lint lint-baseline vet fmt test race test-race-parallel cover fuzz-smoke chaos-smoke resume-smoke soak-smoke scaling-curve bench-snapshot bench-compare ci

all: build lint test

build:
	$(GO) build ./...

# discolint is the repo's own static-analysis suite (internal/lint):
# determinism, conservation, phase-safety and hot-path allocation
# invariants. Only findings beyond the committed baseline fail the gate.
lint: vet fmt
	$(GO) run ./cmd/discolint -baseline lint-baseline.json ./...

# Regenerate the committed baseline from a fresh sweep. Guarded by
# TestBaselineMatchesSweep: a hand-edited or stale baseline fails CI.
lint-baseline:
	$(GO) run ./cmd/discolint -baseline lint-baseline.json -write-baseline ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The two-phase cycle engine's packages (including the golden
# byte-identity and conservation-property suites, which exercise worker
# pools at several widths) under the race detector at two scheduler
# widths: GOMAXPROCS=1 forces maximal interleaving through the pool's
# wake/barrier protocol on one P, GOMAXPROCS=4 runs compute shards
# genuinely concurrently.
test-race-parallel:
	GOMAXPROCS=1 $(GO) test -race ./internal/noc ./internal/disco ./internal/cmp
	GOMAXPROCS=4 $(GO) test -race ./internal/noc ./internal/disco ./internal/cmp

# Per-package statement coverage. The load-bearing packages — the cycle
# engine the whole simulator rests on and the streaming service's wire
# layer — enforce a floor so their test layers cannot silently rot as
# the code grows.
COVER_FLOOR = 85
COVER_FLOOR_PKGS = internal/noc internal/stream
cover:
	@out="$$($(GO) test -cover ./... | grep -v 'no test files')"; \
	echo "$$out"; \
	for pkg in $(COVER_FLOOR_PKGS); do \
		pct="$$(echo "$$out" | awk -v pkg="$$pkg" '$$2 ~ pkg"$$" { for (i = 1; i <= NF; i++) if ($$i ~ /%/) { gsub(/%.*/, "", $$i); print $$i } }')"; \
		if [ -z "$$pct" ]; then echo "cover: no coverage line for $$pkg" >&2; exit 1; fi; \
		awk -v p="$$pct" -v floor="$(COVER_FLOOR)" -v pkg="$$pkg" 'BEGIN { \
			if (p + 0 < floor + 0) { printf "%s coverage %s%% is below the %s%% floor\n", pkg, p, floor; exit 1 } \
			printf "%s coverage %s%% (floor %s%%)\n", pkg, p, floor }' || exit 1; \
	done

# Short native-fuzzing pass over the compressor decoders, the
# kernel/reference differential target, and the stream-layer round-trip
# (one -fuzz invocation each: go test requires the pattern to match
# exactly one target).
fuzz-smoke:
	$(GO) test -run TestNone -fuzz='^FuzzDecompress$$' -fuzztime=10s ./internal/compress
	$(GO) test -run TestNone -fuzz='^FuzzKernelEquivalence$$' -fuzztime=10s ./internal/compress
	$(GO) test -run TestNone -fuzz='^FuzzStreamRoundTrip$$' -fuzztime=10s ./internal/stream

# Fault-injection smoke: each fault class alone and all of them combined,
# at two seeds each, on a short full-system DISCO run. Every cell must
# complete (the resilience machinery absorbs the faults); a panic or a
# stall fails the target.
chaos-smoke:
	@for spec in "engine=0.05,stuck=16" "payload=0.02" "credit=0.01" \
		"engine=0.05,stuck=16,payload=0.02,credit=0.01"; do \
		for seed in 1 2; do \
			echo "== chaos-smoke: $$spec seed=$$seed =="; \
			$(GO) run ./cmd/discosim -run disco -benchmark swaptions \
				-ops 1500 -warmup 500 \
				-fault-spec "$$spec" -fault-seed $$seed || exit 1; \
		done; \
	done

# Kill-resume byte-identity smoke (DESIGN.md §13): run a small campaign
# uninterrupted (the reference artifact), run it again into a cache
# directory and SIGINT it mid-flight (exit 5 = interrupted-but-
# resumable; 0 is tolerated when the tiny campaign wins the race), then
# resume from the cache and require the resumed JSON artifact to be
# byte-identical to the reference.
resume-smoke:
	@set -e; \
	tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/discosim" ./cmd/discosim; \
	args="-exp all -quick -benchmarks swaptions,vips -ops 600 -warmup 150"; \
	echo "== resume-smoke: reference run =="; \
	"$$tmp/discosim" $$args -json "$$tmp/ref.json" >/dev/null; \
	echo "== resume-smoke: interrupted run =="; \
	"$$tmp/discosim" $$args -json "$$tmp/int.json" -cache-dir "$$tmp/cache" >/dev/null & pid=$$!; \
	sleep 2; kill -INT $$pid 2>/dev/null || true; \
	rc=0; wait $$pid || rc=$$?; \
	if [ "$$rc" != 5 ] && [ "$$rc" != 0 ]; then \
		echo "interrupted run exited $$rc, want 5 (resumable) or 0"; exit 1; fi; \
	echo "interrupted run exit code: $$rc"; \
	echo "== resume-smoke: resumed run =="; \
	"$$tmp/discosim" $$args -json "$$tmp/res.json" -cache-dir "$$tmp/cache" -resume >/dev/null; \
	cmp "$$tmp/ref.json" "$$tmp/res.json"; \
	echo "resume-smoke: resumed artifact is byte-identical to the uninterrupted run"

# Streaming-service soak (the ISSUE's acceptance gate): boot a live
# discod, drive 1000 concurrent compressed streams through it with
# discoload (every echo verified byte-exact), assert the server's RSS
# stays bounded, then SIGTERM it and require a clean graceful drain
# (exit 0). The throughput/correctness report lands in bench/ for CI to
# upload as an artifact.
SOAK_STREAMS  = 1000
SOAK_BLOCKS   = 20
SOAK_RSS_KB   = 262144
soak-smoke:
	@set -e; \
	mkdir -p bench; \
	tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/discod" ./cmd/discod; \
	$(GO) build -o "$$tmp/discoload" ./cmd/discoload; \
	echo "== soak-smoke: starting discod =="; \
	"$$tmp/discod" -listen 127.0.0.1:0 -http 127.0.0.1:0 -port-file "$$tmp/port" & pid=$$!; \
	for i in $$(seq 1 100); do [ -f "$$tmp/port" ] && break; sleep 0.1; done; \
	[ -f "$$tmp/port" ] || { echo "discod never wrote its port file"; kill $$pid 2>/dev/null; exit 1; }; \
	addr="$$(head -n1 "$$tmp/port")"; \
	echo "== soak-smoke: $(SOAK_STREAMS) concurrent streams x $(SOAK_BLOCKS) blocks against $$addr =="; \
	"$$tmp/discoload" -addr "$$addr" -streams $(SOAK_STREAMS) -blocks $(SOAK_BLOCKS) \
		-workers $(SOAK_STREAMS) -report bench/soak-report.json || { kill $$pid 2>/dev/null; exit 1; }; \
	if [ -r /proc/$$pid/status ]; then \
		rss="$$(awk '/^VmRSS/ {print $$2}' /proc/$$pid/status)"; \
		echo "discod RSS after soak: $$rss kB (bound $(SOAK_RSS_KB) kB)"; \
		[ "$$rss" -lt $(SOAK_RSS_KB) ] || { echo "discod RSS $$rss kB exceeds the bound"; kill $$pid 2>/dev/null; exit 1; }; \
	else echo "no /proc on this host: skipping the RSS bound"; fi; \
	echo "== soak-smoke: graceful drain (SIGTERM) =="; \
	kill -TERM $$pid; rc=0; wait $$pid || rc=$$?; \
	[ "$$rc" = 0 ] || { echo "discod exited $$rc on SIGTERM, want 0 (clean drain)"; exit 1; }; \
	cat bench/soak-report.json; \
	echo "soak-smoke: $(SOAK_STREAMS) streams byte-exact, RSS bounded, drain clean"

# Worker-count scaling curve on a short full-system run: sweep
# -sim-workers over the two-phase engine and write cycles/sec plus the
# per-phase wall-clock breakdown as CSV. CI uploads the curve as a
# workflow artifact; shared-runner numbers are indicative, not gated.
scaling-curve:
	@mkdir -p bench
	$(GO) run ./cmd/discosim -run disco -benchmark swaptions \
		-ops 2000 -warmup 500 -scaling 1,2,4 -scaling-csv bench/scaling.csv
	@cat bench/scaling.csv

# One pass over every benchmark (sanity, not timing-stable) into
# bench/full.txt, then a timing-stable best-of-5 run of the hot-path
# micro-benchmarks into bench/bench.txt — the committed baseline that
# bench-compare diffs against (benchcmp keeps the min ns/op of the five
# repeats). Also an instrumented quick run whose metrics JSON snapshots
# the simulator's behaviour at this commit; CI uploads bench/ as a
# workflow artifact.
bench-snapshot:
	@mkdir -p bench
	$(GO) test -run TestNone -bench=. -benchtime=1x . | tee bench/full.txt
	$(GO) test -run TestNone \
		-bench '^(BenchmarkCompress|BenchmarkDecompress|BenchmarkNoCStep|BenchmarkTraceGeneration|BenchmarkBlockContent)' \
		-benchtime=50000x -count=5 -benchmem . | tee bench/bench.txt
	$(GO) run ./cmd/discosim -run disco -benchmark canneal \
		-ops 2000 -warmup 1000 -metrics bench/metrics.json

# Re-run the tier-2 micro-benchmarks (best of 5) and diff them against
# the committed baseline (bench/bench.txt) with cmd/benchcmp. Fails when
# a gated hot path (Compress*, Decompress*, NoCStep*) regresses its
# ns/op by more than 10%, or — on a multi-CPU host — when the two-phase
# engine's 4-worker 8x8 mesh speedup over the serial engine falls below
# 1.5x (single-CPU hosts report the ratio without enforcing the floor).
bench-compare:
	@mkdir -p bench
	$(GO) test -run TestNone \
		-bench '^(BenchmarkCompress|BenchmarkDecompress|BenchmarkNoCStep|BenchmarkTraceGeneration|BenchmarkBlockContent)' \
		-benchtime=50000x -count=5 -benchmem . | tee bench/new.txt
	$(GO) run ./cmd/benchcmp -baseline bench/bench.txt -new bench/new.txt \
		-gate '^BenchmarkCompress|^BenchmarkDecompress|^BenchmarkNoCStep' -max-regress 10 \
		-speedup 'BenchmarkNoCStepMesh8Serial=BenchmarkNoCStepMesh8Workers4' -min-speedup 1.5
	$(GO) run ./cmd/benchcmp -baseline bench/baseline_pr6.txt -new bench/new.txt \
		-require 'BenchmarkCompressSC2=50,BenchmarkNoCStepMesh8Serial=30'

ci: build lint race test-race-parallel cover fuzz-smoke chaos-smoke resume-smoke soak-smoke
