GO ?= go

.PHONY: all build lint vet fmt test race fuzz-smoke ci

all: build lint test

build:
	$(GO) build ./...

# discolint is the repo's own static-analysis suite (internal/lint):
# determinism and conservation invariants. Zero findings is the gate.
lint: vet fmt
	$(GO) run ./cmd/discolint ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short native-fuzzing pass over the compressor decoders.
fuzz-smoke:
	$(GO) test -run TestNone -fuzz=Fuzz -fuzztime=10s ./internal/compress

ci: build lint race fuzz-smoke
